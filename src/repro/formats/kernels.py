"""Codebook fast-path quantization kernels.

At word sizes of n <= 8 bits every format in :mod:`repro.formats` has at
most ``2**n`` representable values, so nearest-value quantization does
not need per-element transcendental math (``frexp`` / ``exp2`` /
``log2``): it is a table lookup.  This module materializes, once per
``(format spec, adaptive params)`` key, the sorted codepoint table plus
the *exact* decision thresholds of the analytic implementation, memoizes
them in a bounded LRU cache, and quantizes through one of three
vectorized strategies:

* :class:`AffineCodebook` — grids with uniformly spaced levels
  (``uniform``, ``bfp``, ``fixedpoint``): a fused clamp +
  magic-constant round (the classic ``x + 1.5 * 2**52 * q - ...`` trick
  for power-of-two quanta) touching the tensor a minimal number of
  times.
* :class:`LutCodebook` — float-shaped grids (``adaptivfloat``,
  ``float``, ``posit``, ``logquant``): the top 16 bits of each
  ``float64``'s magnitude index a 32K-entry prefix table that resolves
  the codepoint up to at most a couple of threshold comparisons,
  replacing a full binary search per element with O(1) gathers.
* :class:`SearchCodebook` — the general fallback: a single
  ``np.searchsorted`` against the exact thresholds.

Bit-exactness contract
----------------------
The analytic implementations (``_quantize_analytic`` /
``_quantize_with_params_analytic`` on each format) remain the reference.
Thresholds for the lookup strategies are not assumed to be arithmetic
midpoints: they are recovered by vectorized bisection *against the
analytic implementation itself*, so every rounding subtlety — nearest-
even tie parity, log-domain rounding in ``logquant``, division rounding
in ``uniform`` — is captured exactly.  The fast path is therefore
bit-identical to the analytic path for every finite input.  (NaN inputs
are the one documented exception: the analytic path propagates NaN, the
table path maps it to the largest-magnitude codepoint.)

Eligibility and invalidation
----------------------------
A quantizer opts in through ``Quantizer._codebook_key``: the key encodes
the full format spec plus the adaptive parameters, so a changed
``exp_bias`` / ``scale`` / ``shared_exp`` is simply a different cache
entry — invalidation is automatic.  Stochastic rounding, per-channel or
per-block (vector) parameters, and word sizes above
:func:`max_table_bits` (default 8, override with
``REPRO_CODEBOOK_BITS`` or :func:`set_max_table_bits`) always bypass the
table path.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import sys
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from .. import obs

__all__ = [
    "AffineGrid",
    "Codebook",
    "AffineCodebook",
    "LutCodebook",
    "SearchCodebook",
    "get_codebook",
    "exact_thresholds",
    "analytic_only",
    "max_table_bits",
    "set_max_table_bits",
    "set_cache_size",
    "codebook_cache_stats",
    "clear_codebook_cache",
]

# The magic-constant round trick and the value-domain clamp both need the
# grid step comfortably inside the normal float64 range.
_MIN_STEP = 2.0 ** -900
_MAX_STEP = 2.0 ** 900

# How many threshold-comparison fix-up rounds the prefix LUT may use
# before we fall back to a full binary search.
_MAX_LUT_SPAN = 4

_LITTLE_ENDIAN = sys.byteorder == "little"


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


_max_table_bits = _env_int("REPRO_CODEBOOK_BITS", 8)
_enabled = os.environ.get("REPRO_NO_CODEBOOK", "") not in ("1", "true", "yes")


def max_table_bits() -> int:
    """Largest word size served by the codebook fast path."""
    return _max_table_bits


def set_max_table_bits(bits: int) -> None:
    """Raise or lower the fast-path word-size cap (clears the cache)."""
    global _max_table_bits
    if bits < 0:
        raise ValueError(f"bits cap must be non-negative, got {bits}")
    _max_table_bits = int(bits)
    clear_codebook_cache()


@contextlib.contextmanager
def analytic_only():
    """Context manager: force every quantizer onto its analytic path.

    Used by the equivalence tests to obtain reference outputs, and
    available to callers who need NaN propagation.
    """
    global _enabled
    previous = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = previous


# --------------------------------------------------------------- thresholds
def exact_thresholds(reference: Callable[[np.ndarray], np.ndarray],
                     table: np.ndarray) -> Optional[np.ndarray]:
    """Recover the exact decision boundaries of a monotone quantizer.

    For each adjacent codepoint pair ``(table[i], table[i+1])`` returns
    the *smallest* float64 that ``reference`` maps to ``table[i+1]`` —
    found by bisection in float space, so ties and rounding quirks of the
    reference are captured exactly.  Returns ``None`` if the reference is
    not idempotent on its own codepoints (in which case no table path can
    be bit-exact).
    """
    table = np.asarray(table, dtype=np.float64)
    if table.size < 2:
        return np.empty(0, dtype=np.float64)
    if not np.array_equal(reference(table), table):
        return None
    lo = table[:-1].copy()
    hi = table[1:].copy()
    # Invariants: reference(lo) == table[i], reference(hi) == table[i+1].
    # Arithmetic bisection halves the real interval each step, so ~53
    # steps reach ulp resolution within a binade and ~110 cover the
    # subnormal-threshold worst case; 200 is a comfortable cap.
    for _ in range(200):
        mid = 0.5 * lo + 0.5 * hi
        active = (mid > lo) & (mid < hi)
        if not active.any():
            break
        q_mid = reference(mid)
        up = q_mid > lo  # mid already rounds to the upper codepoint
        hi = np.where(active & up, mid, hi)
        lo = np.where(active & ~up, mid, lo)
    return hi


# ------------------------------------------------------------------- grids
@dataclasses.dataclass(frozen=True)
class AffineGrid:
    """A uniformly spaced grid: codepoints ``k * step`` for integer
    ``k`` in ``[lo_level, hi_level]`` (after any zero-point shift)."""

    step: float
    lo_level: int
    hi_level: int


class Codebook:
    """Base class: a materialized grid with a vectorized lookup."""

    strategy = "abstract"

    def quantize(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class AffineCodebook(Codebook):
    """Fused quantizer for uniformly spaced grids.

    For power-of-two steps and round-to-nearest-even the whole operation
    is three passes — ``clip``, ``+= C``, ``-= C`` with
    ``C = 1.5 * 2**52 * step`` (adding C aligns the mantissa so the FPU's
    own nearest-even rounding drops the sub-step bits) — with no
    division, no ``rint`` and no level/value conversions.  Non-power-of-
    two steps (``uniform``'s float scale) keep the analytic division so
    the result stays bit-identical, then round and clamp in the level
    domain in place.
    """

    strategy = "affine"

    def __init__(self, grid: AffineGrid, round_mode: str) -> None:
        self.grid = grid
        self.round_mode = round_mode
        step = float(grid.step)
        mant, _ = np.frexp(step)
        self._pow2_step = mant == 0.5
        self._magic = 1.5 * 2.0 ** 52 * step
        self._magic_level = 1.5 * 2.0 ** 52
        self._lo_value = grid.lo_level * step
        self._hi_value = grid.hi_level * step

    def codepoints(self) -> np.ndarray:
        levels = np.arange(self.grid.lo_level, self.grid.hi_level + 1,
                           dtype=np.float64)
        return levels * self.grid.step

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        from .base import RoundMode  # local import to avoid a cycle
        if self._pow2_step and self.round_mode == RoundMode.NEAREST_EVEN:
            # Value-domain path: clamp, then magic-round to multiples of
            # step.  Division by a power of two is exact, so skipping it
            # cannot change the result.
            out = np.clip(x, self._lo_value, self._hi_value)
            out += self._magic
            out -= self._magic
            return out
        # Level-domain path (division semantics must match the analytic
        # implementation exactly, so divide by the same scale).
        buf = x / self.grid.step
        if self.round_mode == RoundMode.NEAREST_EVEN:
            buf += self._magic_level
            buf -= self._magic_level
        else:  # NEAREST_AWAY: trunc(x + copysign(0.5, x)), as ulp_round
            half = np.copysign(0.5, buf)
            buf += half
            np.trunc(buf, out=buf)
        np.clip(buf, self.grid.lo_level, self.grid.hi_level, out=buf)
        buf *= self.grid.step
        return buf


class SearchCodebook(Codebook):
    """General table lookup: one binary search against exact thresholds."""

    strategy = "search"

    def __init__(self, table: np.ndarray, thresholds: np.ndarray) -> None:
        self.table = table
        self.thresholds = thresholds

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        idx = np.searchsorted(self.thresholds, x, side="right")
        return self.table[idx]


class LutCodebook(Codebook):
    """Prefix-LUT lookup for float-shaped grids.

    The top 16 bits of each ``float64`` (sign + exponent + 4 mantissa
    bits) select one of 65536 buckets; each bucket is a contiguous real
    interval, so it maps to a contiguous run of codepoints.  The LUT
    stores the first codepoint index of the run and lookup finishes with
    ``span`` gather/compare rounds against the exact thresholds — O(1)
    per element instead of a binary search, with no abs/copysign passes
    because the sign bit participates in the bucket index.
    """

    strategy = "lut"

    def __init__(self, table: np.ndarray, thresholds: np.ndarray,
                 lut: np.ndarray, span: int) -> None:
        self.table = table
        self.thresholds = thresholds
        self._lut = lut
        self._span = span
        # thr_pad[i] separates table[i] and table[i+1].  The top pad is
        # NaN, not inf: every comparison against it is False, so +inf
        # inputs stay clamped at the last codepoint instead of indexing
        # past the table.
        self._thr_pad = np.concatenate([thresholds, [np.nan]])
        # Magnitude view for bit-codec callers (encode paths): only
        # defined when the table is symmetric around a zero codepoint.
        n = table.size
        if n % 2 == 1 and table[n // 2] == 0.0 \
                and np.array_equal(table, -table[::-1]):
            self._zero_idx = n // 2
            self.mag_table: Optional[np.ndarray] = table[n // 2:]
        else:
            self._zero_idx = None
            self.mag_table = None

    @classmethod
    def build(cls, table: np.ndarray,
              thresholds: np.ndarray) -> Optional["LutCodebook"]:
        if not _LITTLE_ENDIAN:
            return None
        # Bucket edges: the two float64 values with the given top 16 bits
        # and all-zero / all-one low mantissa bits.  For negative buckets
        # the all-ones pattern is the *smaller* value, hence minimum/
        # maximum.  NaN buckets propagate NaN and searchsorted sends them
        # to the last codepoint (the documented NaN behaviour).
        idx16 = np.arange(2 ** 16, dtype=np.uint64)
        edge_a = (idx16 << np.uint64(48)).view(np.float64)
        edge_b = ((idx16 << np.uint64(48))
                  | np.uint64(0x0000FFFFFFFFFFFF)).view(np.float64)
        # fmin/fmax ignore NaN so the +/-inf buckets (which also contain
        # NaN bit patterns) keep their infinite edge; all-NaN buckets stay
        # NaN and searchsorted sends them to the last codepoint.
        lo_code = np.searchsorted(thresholds, np.fmin(edge_a, edge_b),
                                  side="right")
        hi_code = np.searchsorted(thresholds, np.fmax(edge_a, edge_b),
                                  side="right")
        span = int((hi_code - lo_code).max())
        if span > _MAX_LUT_SPAN:
            return None
        dtype = np.uint16 if table.size <= 2 ** 16 else np.int64
        return cls(table, thresholds, lo_code.astype(dtype), span)

    def indices(self, flat: np.ndarray) -> np.ndarray:
        """Index into :attr:`table` of the codepoint for each element."""
        prefix = flat.view(np.uint16)[3::4]
        idx = self._lut[prefix]
        for _ in range(self._span):
            idx = idx + (flat >= self._thr_pad[idx])
        return idx

    def magnitude_indices(self, x: np.ndarray) -> np.ndarray:
        """Index into :attr:`mag_table` of the codepoint for ``|x|``."""
        if self._zero_idx is None:
            raise ValueError("table is not symmetric around zero")
        flat = np.abs(np.ascontiguousarray(x).reshape(-1))
        return self.indices(flat).astype(np.int64) - self._zero_idx

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        flat = np.ascontiguousarray(x).reshape(-1)
        return self.table[self.indices(flat)].reshape(x.shape)


# -------------------------------------------------------------------- cache
_lock = threading.Lock()
_cache: "OrderedDict[Hashable, Optional[Codebook]]" = OrderedDict()
_cache_size = _env_int("REPRO_CODEBOOK_CACHE", 128)
_stats = {"hits": 0, "misses": 0, "builds": 0, "evictions": 0,
          "fallbacks": 0}


def set_cache_size(size: int) -> None:
    """Bound the codebook LRU (clears it)."""
    global _cache_size
    if size < 1:
        raise ValueError(f"cache size must be positive, got {size}")
    _cache_size = int(size)
    clear_codebook_cache()


def codebook_cache_stats() -> Dict[str, int]:
    """Hit/miss/build/eviction counters plus the current entry count."""
    with _lock:
        stats = dict(_stats)
        stats["entries"] = len(_cache)
        stats["capacity"] = _cache_size
    return stats


def clear_codebook_cache() -> None:
    with _lock:
        _cache.clear()
        for key in _stats:
            _stats[key] = 0


def _build_codebook(quantizer: Any,
                    params: Optional[Dict[str, Any]]) -> Optional[Codebook]:
    round_mode = getattr(quantizer, "round_mode", None) or "nearest-even"
    grid = quantizer._affine_grid(params)
    if grid is not None:
        if not (np.isfinite(grid.step)
                and _MIN_STEP <= abs(grid.step) <= _MAX_STEP):
            return None
        return AffineCodebook(grid, round_mode)
    try:
        table = np.unique(np.asarray(
            quantizer.codepoints(**(params or {})), dtype=np.float64))
    except (TypeError, NotImplementedError):
        return None
    if table.size < 2 or not np.isfinite(table).all():
        return None
    thresholds = exact_thresholds(quantizer._codebook_reference(params), table)
    if thresholds is None:
        return None
    lut = LutCodebook.build(table, thresholds)
    if lut is not None:
        return lut
    return SearchCodebook(table, thresholds)


def get_codebook(quantizer: Any,
                 params: Optional[Dict[str, Any]]) -> Optional[Codebook]:
    """Return the memoized codebook for ``(quantizer, params)``.

    ``None`` means the combination is ineligible (too many bits,
    stochastic rounding, vector params, non-enumerable grid, ...) and the
    caller must use the analytic path.  Negative results are cached too.
    """
    if not _enabled:
        return None
    key = quantizer._codebook_key(params)
    if key is None:
        return None
    with _lock:
        if key in _cache:
            _cache.move_to_end(key)
            _stats["hits"] += 1
            return _cache[key]
        _stats["misses"] += 1
    codebook = _build_codebook(quantizer, params)
    with _lock:
        _stats["builds"] += 1
        if codebook is None:
            _stats["fallbacks"] += 1
        _cache[key] = codebook
        _cache.move_to_end(key)
        while len(_cache) > _cache_size:
            _cache.popitem(last=False)
            _stats["evictions"] += 1
    return codebook


# ------------------------------------------------------------ observability
# The legacy dict above stays the source of truth (zero hot-path cost);
# a pull collector copies it into gauges whenever the obs registry
# snapshots or renders, so scrapes see the LRU state without the cache
# paying per-lookup metric writes.
_OBS_GAUGE = obs.gauge(
    "repro_codebook_cache", "Codebook LRU cache state "
    "(hits/misses/builds/evictions/fallbacks/entries/capacity).",
    ("stat",))


def _collect_codebook_stats(_registry) -> None:
    for stat, value in codebook_cache_stats().items():
        _OBS_GAUGE.labels(stat=stat).set(float(value))


obs.register_collector(_collect_codebook_stats)
