"""Factory for the paper's number formats with the paper's defaults.

Section 4 of the paper fixes the field widths after an exponent-width
search: 3 exponent bits for AdaptivFloat, 4 for IEEE-like float (3 at a
4-bit word), and ``es = 1`` for posit (``es = 0`` at a 4-bit word).
:func:`make_quantizer` encodes those defaults so every experiment in
:mod:`repro.experiments` builds formats the same way, while still
accepting explicit overrides for the exponent-width-search ablation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

import numpy as np

from .adaptivfloat import AdaptivFloat
from .base import Quantizer
from .bfp import BlockFloat
from .fixedpoint import FixedPoint
from .float_ieee import FloatIEEE
from .logquant import LogQuant
from .posit import Posit
from .uniform import Uniform

__all__ = ["Fp32", "make_quantizer", "paper_formats", "FORMAT_NAMES"]

#: The five formats compared throughout the paper, in the tables' order.
FORMAT_NAMES = ("float", "bfp", "uniform", "posit", "adaptivfloat")


class Fp32(Quantizer):
    """Identity 'format' standing in for the FP32 baseline."""

    name = "fp32"

    def __init__(self, bits: int = 32) -> None:
        super().__init__(bits)

    def _quantize_analytic(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def _codebook_key(self, params):
        return None  # identity format; nothing to tabulate

    def codepoints(self) -> np.ndarray:
        raise NotImplementedError("FP32 codepoints are not enumerable")


def _default_float_exp_bits(bits: int) -> int:
    return 3 if bits <= 4 else 4


def _default_posit_es(bits: int) -> int:
    return 0 if bits <= 4 else 1


def make_quantizer(name: str, bits: int, **overrides: Any) -> Quantizer:
    """Build a quantizer by format name with the paper's default fields.

    Parameters
    ----------
    name:
        One of ``"adaptivfloat"``, ``"float"``, ``"bfp"``, ``"uniform"``,
        ``"posit"``, ``"fixedpoint"`` or ``"fp32"``.
    bits:
        Word size in bits.
    overrides:
        Format-specific keyword arguments (``exp_bits``, ``es``,
        ``block_size``, ``round_mode``, ...).
    """
    factories: Dict[str, Callable[..., Quantizer]] = {
        "adaptivfloat": lambda: AdaptivFloat(
            bits, exp_bits=overrides.pop("exp_bits", 3), **overrides),
        "float": lambda: FloatIEEE(
            bits, exp_bits=overrides.pop("exp_bits", _default_float_exp_bits(bits)),
            **overrides),
        "bfp": lambda: BlockFloat(bits, **overrides),
        "uniform": lambda: Uniform(bits, **overrides),
        "posit": lambda: Posit(
            bits, es=overrides.pop("es", _default_posit_es(bits)), **overrides),
        "fixedpoint": lambda: FixedPoint(
            bits, frac_bits=overrides.pop("frac_bits", bits - 2), **overrides),
        "logquant": lambda: LogQuant(bits),
        "fp32": lambda: Fp32(),
    }
    key = name.lower()
    if key not in factories:
        raise ValueError(f"unknown format {name!r}; known: {sorted(factories)}")
    return factories[key]()


def paper_formats(bits: int) -> List[Quantizer]:
    """The five formats of Tables 2/3 and Fig. 4 at a given word size."""
    return [make_quantizer(name, bits) for name in FORMAT_NAMES]
