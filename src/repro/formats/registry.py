"""Factory for the paper's number formats with the paper's defaults.

Section 4 of the paper fixes the field widths after an exponent-width
search: 3 exponent bits for AdaptivFloat, 4 for IEEE-like float (3 at a
4-bit word), and ``es = 1`` for posit (``es = 0`` at a 4-bit word).
:func:`make_quantizer` encodes those defaults so every experiment in
:mod:`repro.experiments` builds formats the same way, while still
accepting explicit overrides for the exponent-width-search ablation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from .adaptivfloat import AdaptivFloat
from .base import Quantizer
from .bfp import BlockFloat
from .fixedpoint import FixedPoint
from .float_ieee import FloatIEEE
from .logquant import LogQuant
from .posit import Posit
from .uniform import Uniform

__all__ = ["Fp32", "make_quantizer", "paper_formats", "FORMAT_NAMES",
           "FormatRange", "exact_range"]

#: The five formats compared throughout the paper, in the tables' order.
FORMAT_NAMES = ("float", "bfp", "uniform", "posit", "adaptivfloat")


class Fp32(Quantizer):
    """Identity 'format' standing in for the FP32 baseline."""

    name = "fp32"

    def __init__(self, bits: int = 32) -> None:
        super().__init__(bits)

    def _quantize_analytic(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def _codebook_key(self, params):
        return None  # identity format; nothing to tabulate

    def codepoints(self) -> np.ndarray:
        raise NotImplementedError("FP32 codepoints are not enumerable")


def _default_float_exp_bits(bits: int) -> int:
    return 3 if bits <= 4 else 4


def _default_posit_es(bits: int) -> int:
    return 0 if bits <= 4 else 1


def make_quantizer(name: str, bits: int, **overrides: Any) -> Quantizer:
    """Build a quantizer by format name with the paper's default fields.

    Parameters
    ----------
    name:
        One of ``"adaptivfloat"``, ``"float"``, ``"bfp"``, ``"uniform"``,
        ``"posit"``, ``"fixedpoint"`` or ``"fp32"``.
    bits:
        Word size in bits.
    overrides:
        Format-specific keyword arguments (``exp_bits``, ``es``,
        ``block_size``, ``round_mode``, ...).
    """
    factories: Dict[str, Callable[..., Quantizer]] = {
        "adaptivfloat": lambda: AdaptivFloat(
            bits, exp_bits=overrides.pop("exp_bits", 3), **overrides),
        "float": lambda: FloatIEEE(
            bits, exp_bits=overrides.pop("exp_bits", _default_float_exp_bits(bits)),
            **overrides),
        "bfp": lambda: BlockFloat(bits, **overrides),
        "uniform": lambda: Uniform(bits, **overrides),
        "posit": lambda: Posit(
            bits, es=overrides.pop("es", _default_posit_es(bits)), **overrides),
        "fixedpoint": lambda: FixedPoint(
            bits, frac_bits=overrides.pop("frac_bits", bits - 2), **overrides),
        "logquant": lambda: LogQuant(bits),
        "fp32": lambda: Fp32(),
    }
    key = name.lower()
    if key not in factories:
        raise ValueError(f"unknown format {name!r}; known: {sorted(factories)}")
    return factories[key]()


def paper_formats(bits: int) -> List[Quantizer]:
    """The five formats of Tables 2/3 and Fig. 4 at a given word size."""
    return [make_quantizer(name, bits) for name in FORMAT_NAMES]


# --------------------------------------------------------- exact range data
@dataclasses.dataclass(frozen=True)
class FormatRange:
    """Exact representable-range metadata for one ``(format, bits)``.

    Everything is kept as exact integers so static analyses (the HW001
    accumulator-overflow prover in :mod:`repro.lint.ranges`) can reason
    about worst-case accumulations without float rounding.  The maximum
    magnitude is ``sig_max * 2**sig_exp``; for scale/bias-adaptive
    formats (uniform, bfp, adaptivfloat, logquant) it is expressed in
    the format's *internal* units — integer levels, or bias-relative
    binades — which is exactly the domain the PE datapaths compute in.

    ``pe`` names the paper datapath the format's operands feed:
    ``"int"`` (integer level grids -> Fig. 5a ``IntVectorMac``),
    ``"hfint"`` (sign/exponent/mantissa words -> Fig. 5b
    ``HFIntVectorMac``) or ``None`` (no modeled PE).
    """

    name: str
    bits: int
    pe: Optional[str]
    #: integer-grid formats: largest |level| the format can emit
    level_max: Optional[int] = None
    #: hfint-style formats: field widths and the largest stored-exponent
    #: left shift one operand contributes to a product
    exp_bits: Optional[int] = None
    mant_bits: Optional[int] = None
    max_exp_shift: Optional[int] = None
    #: exact max magnitude = ``sig_max * 2**sig_exp`` (internal units)
    sig_max: int = 0
    sig_exp: int = 0
    #: magnitude floats with a per-tensor scale / shared exponent / bias
    scale_dependent: bool = False
    note: str = ""

    @property
    def value_max(self) -> float:
        """Float view of the exact max magnitude (may lose precision)."""
        return float(self.sig_max) * 2.0 ** self.sig_exp


def exact_range(name: str, bits: int, **overrides: Any) -> FormatRange:
    """Exact range metadata for a registry format at a word size.

    Accepts the same ``overrides`` as :func:`make_quantizer` (``exp_bits``,
    ``es``, ``frac_bits``); defaults mirror the factory exactly.
    """
    key = name.lower()
    if key == "adaptivfloat":
        e = int(overrides.get("exp_bits", 3))
        m = bits - e - 1
        return FormatRange(
            name=key, bits=bits, pe="hfint", exp_bits=e, mant_bits=m,
            max_exp_shift=2 ** e - 1,
            sig_max=2 ** (m + 1) - 1, sig_exp=(2 ** e - 1) - m,
            scale_dependent=True,
            note="sig_exp is relative to the per-tensor exp_bias")
    if key == "float":
        e = int(overrides.get("exp_bits", _default_float_exp_bits(bits)))
        m = bits - e - 1
        fmt = FloatIEEE(bits, exp_bits=e)
        return FormatRange(
            name=key, bits=bits, pe="hfint", exp_bits=e, mant_bits=m,
            max_exp_shift=2 ** e - 1,
            sig_max=2 ** (m + 1) - 1, sig_exp=fmt.max_exp - m,
            note=("modeled on the HFINT PE with a fixed bias; subnormal "
                  "words decode differently but max-magnitude words agree"))
    if key in ("uniform", "bfp"):
        level_max = 2 ** (bits - 1) - 1    # symmetric clamp in both grids
        return FormatRange(
            name=key, bits=bits, pe="int", level_max=level_max,
            sig_max=level_max, sig_exp=0, scale_dependent=True,
            note="sig_max is in integer levels (uniform scale / shared-exp "
                 "mantissa units)")
    if key == "fixedpoint":
        frac = int(overrides.get("frac_bits", bits - 2))
        level_max = 2 ** (bits - 1) - 1
        return FormatRange(
            name=key, bits=bits, pe="int", level_max=level_max,
            sig_max=level_max, sig_exp=-frac,
            note=("grid also holds level_min=-2**(bits-1), one step past "
                  "the PE's symmetric operand clamp"))
    if key == "posit":
        es = int(overrides.get("es", _default_posit_es(bits)))
        return FormatRange(
            name=key, bits=bits, pe=None,
            sig_max=1, sig_exp=(bits - 2) * 2 ** es,
            note="tapered regime grid; no modeled PE datapath (a quire-"
                 "style accumulator would be needed)")
    if key == "logquant":
        return FormatRange(
            name=key, bits=bits, pe=None,
            sig_max=1, sig_exp=0, scale_dependent=True,
            note="power-of-two codes under a data-dependent exp_max; no "
                 "modeled PE datapath")
    if key == "fp32":
        return FormatRange(
            name=key, bits=32, pe=None,
            sig_max=2 ** 24 - 1, sig_exp=127 - 23,
            note="IEEE binary32 baseline; no modeled PE datapath")
    raise ValueError(f"unknown format {name!r}")
