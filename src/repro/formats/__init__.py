"""Number formats: AdaptivFloat and the paper's baseline encodings.

Public entry points:

* :class:`AdaptivFloat` — the paper's format (Algorithm 1).
* :class:`FloatIEEE`, :class:`BlockFloat`, :class:`Uniform`,
  :class:`Posit`, :class:`FixedPoint` — the baselines.
* :func:`make_quantizer` / :func:`paper_formats` — factories with the
  paper's default field widths.
* :func:`adaptivfloat_quantize` — one-shot functional quantization.
"""

from . import kernels
from .adaptivfloat import AdaptivFloat, adaptivfloat_quantize, exponent_bias_for
from .base import AdaptiveQuantizer, Quantizer, QuantizedTensor, RoundMode
from .bfp import BlockFloat
from .bitpack import pack_words, packed_nbytes, unpack_words
from .fixedpoint import FixedPoint
from .float_ieee import FloatIEEE
from .kernels import (analytic_only, clear_codebook_cache, codebook_cache_stats,
                      get_codebook, max_table_bits, set_max_table_bits)
from .logquant import LogQuant
from .numerics import (adaptivfloat_product_bits, decades_covered,
                       dynamic_range_db, format_summary,
                       hfint_accumulator_bits, int_accumulator_bits,
                       worst_case_relative_error)
from .posit import Posit, decode_posit_word
from .registry import FORMAT_NAMES, Fp32, make_quantizer, paper_formats
from .uniform import Uniform

__all__ = [
    "AdaptivFloat",
    "AdaptiveQuantizer",
    "BlockFloat",
    "FixedPoint",
    "FloatIEEE",
    "Fp32",
    "FORMAT_NAMES",
    "LogQuant",
    "adaptivfloat_product_bits",
    "decades_covered",
    "dynamic_range_db",
    "format_summary",
    "hfint_accumulator_bits",
    "int_accumulator_bits",
    "worst_case_relative_error",
    "Posit",
    "Quantizer",
    "QuantizedTensor",
    "RoundMode",
    "Uniform",
    "adaptivfloat_quantize",
    "analytic_only",
    "clear_codebook_cache",
    "codebook_cache_stats",
    "decode_posit_word",
    "exponent_bias_for",
    "get_codebook",
    "kernels",
    "make_quantizer",
    "max_table_bits",
    "set_max_table_bits",
    "pack_words",
    "packed_nbytes",
    "paper_formats",
    "unpack_words",
]
