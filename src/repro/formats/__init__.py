"""Number formats: AdaptivFloat and the paper's baseline encodings.

Public entry points:

* :class:`AdaptivFloat` — the paper's format (Algorithm 1).
* :class:`FloatIEEE`, :class:`BlockFloat`, :class:`Uniform`,
  :class:`Posit`, :class:`FixedPoint` — the baselines.
* :func:`make_quantizer` / :func:`paper_formats` — factories with the
  paper's default field widths.
* :func:`adaptivfloat_quantize` — one-shot functional quantization.
"""

from . import kernels
from .adaptivfloat import AdaptivFloat, adaptivfloat_quantize, exponent_bias_for
from .base import AdaptiveQuantizer, Quantizer, QuantizedTensor, RoundMode
from .bfp import BlockFloat
from .bitpack import flip_word_bits, pack_words, packed_nbytes, unpack_words
from .codec import (MAX_DECODE_LUT_BITS, clear_decode_lut_cache, decode_lut,
                    decode_lut_cache_stats, decode_tensor, decode_words,
                    encode_tensor)
from .fixedpoint import FixedPoint
from .float_ieee import FloatIEEE
from .kernels import (analytic_only, clear_codebook_cache, codebook_cache_stats,
                      get_codebook, max_table_bits, set_max_table_bits)
from .logquant import LogQuant
from .numerics import (adaptivfloat_product_bits, decades_covered,
                       dynamic_range_db, format_summary,
                       hfint_accumulator_bits, int_accumulator_bits,
                       worst_case_relative_error)
from .posit import Posit, decode_posit_word
from .registry import (FORMAT_NAMES, FormatRange, Fp32, exact_range,
                       make_quantizer, paper_formats)
from .uniform import Uniform

__all__ = [
    "AdaptivFloat",
    "AdaptiveQuantizer",
    "BlockFloat",
    "FixedPoint",
    "FloatIEEE",
    "FormatRange",
    "Fp32",
    "FORMAT_NAMES",
    "LogQuant",
    "adaptivfloat_product_bits",
    "decades_covered",
    "dynamic_range_db",
    "format_summary",
    "hfint_accumulator_bits",
    "int_accumulator_bits",
    "worst_case_relative_error",
    "Posit",
    "Quantizer",
    "QuantizedTensor",
    "RoundMode",
    "Uniform",
    "MAX_DECODE_LUT_BITS",
    "adaptivfloat_quantize",
    "analytic_only",
    "clear_codebook_cache",
    "clear_decode_lut_cache",
    "codebook_cache_stats",
    "decode_lut",
    "decode_lut_cache_stats",
    "decode_posit_word",
    "decode_tensor",
    "decode_words",
    "encode_tensor",
    "exact_range",
    "exponent_bias_for",
    "flip_word_bits",
    "get_codebook",
    "kernels",
    "make_quantizer",
    "max_table_bits",
    "set_max_table_bits",
    "pack_words",
    "packed_nbytes",
    "paper_formats",
    "unpack_words",
]
