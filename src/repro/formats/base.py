"""Common infrastructure for the quantized number formats.

Every format in :mod:`repro.formats` is exposed as a :class:`Quantizer`,
a stateless description of an *n*-bit encoding plus the operations the
paper's evaluation needs:

* ``quantize(x)``      -- round a float tensor to the nearest codepoint,
* ``codepoints(...)``  -- enumerate every representable value,
* ``encode/decode``    -- convert to and from the raw bit patterns that a
  hardware datapath would store.

Adaptive formats (AdaptivFloat, block floating point, uniform) derive a
per-tensor parameter (``exp_bias``, shared exponent, or scale) from the
data; non-adaptive formats (IEEE-like float, posit) do not.  The
``fit(x)`` / ``quantize_with_params`` split lets callers freeze the
adaptive parameter from calibration data, which is how the paper handles
activation tensors (Section 5.2: the activation ``exp_bias`` is "informed
from statistics during offline batch inference").
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..rng import default_rng

__all__ = [
    "RoundMode",
    "Quantizer",
    "AdaptiveQuantizer",
    "QuantizedTensor",
    "round_to_grid",
    "ulp_round",
]


class RoundMode:
    """Supported rounding modes for mantissa / grid rounding."""

    NEAREST_EVEN = "nearest-even"
    NEAREST_AWAY = "nearest-away"
    STOCHASTIC = "stochastic"

    ALL = (NEAREST_EVEN, NEAREST_AWAY, STOCHASTIC)


def ulp_round(x: np.ndarray, mode: str = RoundMode.NEAREST_EVEN,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Round ``x`` to integers under the requested rounding mode.

    ``x`` is expected to already be expressed in units of the target grid
    (i.e. one ULP == 1.0).
    """
    if mode == RoundMode.NEAREST_EVEN:
        return np.rint(x)
    if mode == RoundMode.NEAREST_AWAY:
        return np.trunc(x + np.copysign(0.5, x))
    if mode == RoundMode.STOCHASTIC:
        rng = default_rng(rng)
        floor = np.floor(x)
        frac = x - floor
        return floor + (rng.random(size=np.shape(x)) < frac)
    raise ValueError(f"unknown rounding mode: {mode!r}")


def round_to_grid(x: np.ndarray, quantum: np.ndarray,
                  mode: str = RoundMode.NEAREST_EVEN,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Round ``x`` to the nearest multiple of ``quantum`` (elementwise)."""
    return ulp_round(np.asarray(x, dtype=np.float64) / quantum, mode, rng) * quantum


class Quantizer(abc.ABC):
    """Abstract n-bit number format.

    Subclasses must set :attr:`name` and :attr:`bits` and implement
    :meth:`_quantize_analytic` and :meth:`codepoints`.  The public
    :meth:`quantize` first tries the shared codebook fast path
    (:mod:`repro.formats.kernels`); the analytic implementation is the
    bit-exact reference it falls back to (and is bisected against when a
    codebook is built).
    """

    #: short format identifier, e.g. ``"adaptivfloat"``
    name: str = "abstract"

    def __init__(self, bits: int) -> None:
        if bits < 2:
            raise ValueError(f"{type(self).__name__} needs at least 2 bits, got {bits}")
        self.bits = int(bits)

    # ------------------------------------------------------------------ API
    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Return ``x`` rounded to the nearest representable value."""
        from . import kernels
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 0:
            # 0-d inputs break `out=`-style kernels (np.clip(scalar,
            # out=...) is a TypeError); promote at the boundary so every
            # format sees >= 1-d and callers get a 0-d result back.
            return self.quantize(x.reshape(1)).reshape(())
        codebook = kernels.get_codebook(self, None)
        if codebook is not None:
            return codebook.quantize(x)
        return self._quantize_analytic(x)

    @abc.abstractmethod
    def _quantize_analytic(self, x: np.ndarray) -> np.ndarray:
        """Reference implementation of :meth:`quantize` (elementwise math)."""

    @abc.abstractmethod
    def codepoints(self, **params: Any) -> np.ndarray:
        """Return a sorted 1-D array of every representable value."""

    # ------------------------------------------------- codebook fast path
    def _codebook_key(self, params: Optional[Dict[str, Any]]) -> Optional[Any]:
        """Hashable cache key for the codebook fast path, or ``None``.

        ``None`` marks the combination ineligible: word sizes above the
        table cap, stochastic rounding, or non-scalar adaptive params.
        Subclasses with extra gating (per-channel / per-block modes)
        extend this.
        """
        from . import kernels
        if self.bits > kernels.max_table_bits():
            return None
        round_mode = getattr(self, "round_mode", RoundMode.NEAREST_EVEN)
        if round_mode == RoundMode.STOCHASTIC:
            return None
        normalized = []
        for key in sorted(params or {}):
            value = params[key]
            if isinstance(value, (int, np.integer)):
                normalized.append((key, int(value)))
            elif isinstance(value, (float, np.floating)):
                normalized.append((key, float(value)))
            else:
                return None  # vector (per-channel/per-block) parameters
        spec_items = tuple(sorted(self.spec().items()))
        return (type(self).__name__, spec_items, round_mode,
                tuple(normalized))

    def _codebook_reference(
            self, params: Optional[Dict[str, Any]]
    ) -> "Callable[[np.ndarray], np.ndarray]":
        """The analytic callable the codebook builder bisects against."""
        return self._quantize_analytic

    def _affine_grid(self, params: Optional[Dict[str, Any]]):
        """Uniform-grid description for the fused affine kernel, if any."""
        return None

    # ------------------------------------------------------------ bit codec
    def bit_fields(self) -> tuple:
        """Per-bit field labels of the stored word, MSB first.

        Formats with a bit-level codec (``encode``/``decode``) return a
        ``bits``-long tuple of labels from {"sign", "exponent",
        "mantissa"}; the fault-injection subsystem
        (:mod:`repro.resilience`) uses it to target flips at one field.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no bit-level codec")

    # -------------------------------------------------------------- helpers
    def spec(self) -> Dict[str, Any]:
        """A plain-dict description (for reports and serialization)."""
        return {"name": self.name, "bits": self.bits}

    def quantization_error(self, x: np.ndarray) -> float:
        """Root-mean-square error of quantizing ``x`` (paper Fig. 4)."""
        x = np.asarray(x, dtype=np.float64)
        err = self.quantize(x) - x
        return float(np.sqrt(np.mean(err * err)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{k}={v}" for k, v in self.spec().items() if k != "name")
        return f"{type(self).__name__}({fields})"


class AdaptiveQuantizer(Quantizer):
    """A quantizer whose grid depends on a per-tensor parameter.

    Subclasses implement :meth:`fit` (derive the adaptive parameter from
    data) and :meth:`_quantize_with_params_analytic`.  The default
    :meth:`quantize` composes the two, which is the per-layer
    self-adaptive behaviour used for weights throughout the paper.
    Because the codebook fast path is keyed on the fitted parameters, the
    (cheap) fit runs every call while the (expensive) grid is memoized —
    and a parameter change simply selects a different cache entry.
    """

    @abc.abstractmethod
    def fit(self, x: np.ndarray) -> Dict[str, Any]:
        """Derive the adaptive parameter(s) (e.g. ``exp_bias``) from ``x``."""

    @abc.abstractmethod
    def _quantize_with_params_analytic(self, x: np.ndarray,
                                       params: Dict[str, Any]) -> np.ndarray:
        """Reference grid quantization (elementwise math)."""

    def quantize_with_params(self, x: np.ndarray, params: Dict[str, Any]) -> np.ndarray:
        """Quantize ``x`` on the grid described by ``params``."""
        from . import kernels
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 0:
            # Same 0-d promotion as Quantizer.quantize: scalar in, 0-d out.
            return self.quantize_with_params(x.reshape(1), params).reshape(())
        codebook = kernels.get_codebook(self, params)
        if codebook is not None:
            return codebook.quantize(x)
        return self._quantize_with_params_analytic(x, params)

    def _quantize_analytic(self, x: np.ndarray) -> np.ndarray:
        return self._quantize_with_params_analytic(x, self.fit(x))

    def _codebook_reference(
            self, params: Optional[Dict[str, Any]]
    ) -> "Callable[[np.ndarray], np.ndarray]":
        if params is None:
            return self._quantize_analytic
        return lambda values: self._quantize_with_params_analytic(values, params)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self.quantize_with_params(x, self.fit(x))


@dataclasses.dataclass(frozen=True)
class QuantizedTensor:
    """A quantized tensor together with the parameters used to encode it.

    ``values`` holds the dequantized (float) view; ``params`` holds the
    adaptive parameters (empty for non-adaptive formats) so the tensor can
    be re-encoded to bits exactly.
    """

    values: np.ndarray
    format_spec: Dict[str, Any]
    params: Dict[str, Any]

    @property
    def nbytes_packed(self) -> int:
        """Size in bytes if packed at the format's bit width."""
        bits = int(self.format_spec["bits"]) * self.values.size
        return (bits + 7) // 8
