"""Uniform (integer) quantization (paper baseline "Uniform").

Symmetric uniform quantization with a full-precision scale factor, the
scheme used by integer inference engines such as TensorRT [21]:

    ``scale = max|W| / (2**(n-1) - 1)``
    ``q(v)  = clamp(round(v / scale)) * scale``

The scale is a high-precision float — this is the per-tensor adaptive
parameter, and it is exactly the hardware cost the HFINT PE avoids by
replacing the post-accumulation scaling multiplier with AdaptivFloat's
integer ``exp_bias`` shift (paper Section 5).

An asymmetric (affine) variant with a zero point is provided as an
extension; the paper's baseline is the symmetric form.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from .base import AdaptiveQuantizer, RoundMode, ulp_round

__all__ = ["Uniform"]


class Uniform(AdaptiveQuantizer):
    """Symmetric (or affine) ``n``-bit uniform quantizer."""

    name = "uniform"

    def __init__(self, bits: int, symmetric: bool = True,
                 round_mode: str = RoundMode.NEAREST_EVEN,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(bits)
        if round_mode not in RoundMode.ALL:
            raise ValueError(f"unknown round mode {round_mode!r}")
        self.symmetric = bool(symmetric)
        self.round_mode = round_mode
        self._rng = rng

    # ----------------------------------------------------------- structure
    @property
    def level_max(self) -> int:
        """Largest integer level magnitude: ``2**(n-1) - 1``."""
        return 2 ** (self.bits - 1) - 1

    # ------------------------------------------------------------- fitting
    def fit(self, x: np.ndarray) -> Dict[str, Any]:
        x = np.asarray(x, dtype=np.float64)
        if self.symmetric:
            # abs-max via two reductions: no |x| temporary.
            max_abs = max(float(x.max()), float(-x.min()), 0.0) if x.size else 0.0
            if not np.isfinite(max_abs):
                # +/-Inf or NaN elements (e.g. a bit-flipped exponent
                # upstream) would drive ``scale`` to inf and every later
                # division to inf/inf -> NaN.  Fit the grid on the finite
                # mass instead; quantize saturates the non-finite
                # magnitudes to the extreme codepoint.
                finite = x[np.isfinite(x)]
                max_abs = float(np.abs(finite).max()) if finite.size else 0.0
            scale = max_abs / self.level_max
            if scale <= 0.0:  # all-zero or underflowed-to-zero tensor
                scale = 1.0
            while not np.isfinite(self.level_max * scale):
                # max_abs within a few ULP of the float64 maximum: the
                # rounded-up division makes the extreme codepoint
                # ``level_max * scale`` overflow; step the scale down.
                scale = float(np.nextafter(scale, 0.0))
            return {"scale": scale, "zero_point": 0}
        lo = float(x.min()) if x.size else 0.0
        hi = float(x.max()) if x.size else 0.0
        if not (np.isfinite(lo) and np.isfinite(hi)):
            finite = x[np.isfinite(x)]
            lo = float(finite.min()) if finite.size else 0.0
            hi = float(finite.max()) if finite.size else 0.0
        span = hi - lo
        levels = 2 ** self.bits - 1
        if span > 0.0 and not np.isfinite(span):
            # lo/hi straddle most of the float64 range; divide first so
            # the span arithmetic cannot overflow.
            scale = hi / levels - lo / levels
        else:
            scale = span / levels if span > 0.0 else 1.0
        zero_point = int(np.rint(-lo / scale)) if span > 0.0 else 0
        return {"scale": scale, "zero_point": zero_point}

    def _affine_grid(self, params):
        if params is None:
            return None
        scale = params.get("scale")
        if not isinstance(scale, (int, float, np.integer, np.floating)):
            return None
        scale = float(scale)
        if not (scale > 0.0 and np.isfinite(scale)):
            return None
        from .kernels import AffineGrid
        if self.symmetric:
            return AffineGrid(step=scale, lo_level=-self.level_max,
                              hi_level=self.level_max)
        # Affine: clamp in the zero-point-shifted level range, which is
        # exactly clamp-then-shift of the analytic path (integer shifts
        # of |level| <= 2**bits are exact in float64).
        zero_point = int(params.get("zero_point", 0))
        return AffineGrid(step=scale, lo_level=-zero_point,
                          hi_level=(2 ** self.bits - 1) - zero_point)

    # ---------------------------------------------------------- quantizing
    def _quantize_with_params_analytic(self, x: np.ndarray,
                                       params: Dict[str, Any]) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        scale = float(params["scale"])
        zero_point = int(params.get("zero_point", 0))
        # Value-domain pre-clamp: saturates +/-Inf (and anything beyond
        # the extreme codepoints) before the division so it can never
        # reach the rounding path as inf; NaN propagates through clip.
        if self.symmetric:
            top = self.level_max * scale
            levels = ulp_round(np.clip(x, -top, top) / scale,
                               self.round_mode, self._rng)
            levels = np.clip(levels, -self.level_max, self.level_max)
            return levels * scale
        lo = (0 - zero_point) * scale
        hi = (2 ** self.bits - 1 - zero_point) * scale
        levels = ulp_round(np.clip(x, lo, hi) / scale,
                           self.round_mode, self._rng) + zero_point
        levels = np.clip(levels, 0, 2 ** self.bits - 1)
        return (levels - zero_point) * scale

    # ---------------------------------------------------------- bit codec
    def bit_fields(self):
        if self.symmetric:
            # Two's-complement level: the MSB is the sign.
            return ("sign",) + ("mantissa",) * (self.bits - 1)
        return ("mantissa",) * self.bits  # biased magnitude code, no sign

    def encode(self, values: np.ndarray, scale: float,
               zero_point: int = 0) -> np.ndarray:
        """Encode already-quantized ``values`` into raw level words.

        Symmetric levels are stored two's-complement; affine levels are
        stored directly (``level + zero_point`` in ``[0, 2**n - 1]``).
        """
        v = np.asarray(values, dtype=np.float64)
        scale = float(scale)
        if not np.isfinite(v).all():
            raise ValueError("only finite quantized values are encodable")
        levels = np.rint(v / scale).astype(np.int64)
        if not np.array_equal(levels.astype(np.float64) * scale, v):
            raise ValueError("value not on the uniform grid")
        mask = np.int64(2 ** self.bits - 1)
        if self.symmetric:
            if np.any(np.abs(levels) > self.level_max):
                raise ValueError("level outside the symmetric range")
            return (levels & mask).astype(np.uint32)
        stored = levels + int(zero_point)
        if np.any((stored < 0) | (stored > 2 ** self.bits - 1)):
            raise ValueError("level outside the affine range")
        return stored.astype(np.uint32)

    def decode(self, words: np.ndarray, scale: float,
               zero_point: int = 0) -> np.ndarray:
        """Decode raw level words back to float values (total function).

        Every ``n``-bit word decodes: the two's-complement minimum
        ``-2**(n-1)`` (one below the symmetric clamp, reachable only via
        bit flips) decodes faithfully to what the datapath would compute.
        """
        w = (np.asarray(words, dtype=np.int64)
             & np.int64(2 ** self.bits - 1))
        if self.symmetric:
            levels = np.where(w >= 2 ** (self.bits - 1), w - 2 ** self.bits, w)
        else:
            levels = w - int(zero_point)
        return levels.astype(np.float64) * float(scale)

    # -------------------------------------------------------- enumeration
    def codepoints(self, scale: float = 1.0, zero_point: int = 0) -> np.ndarray:
        if self.symmetric:
            levels = np.arange(-self.level_max, self.level_max + 1, dtype=np.float64)
            return levels * float(scale)
        levels = np.arange(0, 2 ** self.bits, dtype=np.float64)
        return (levels - zero_point) * float(scale)

    def spec(self) -> Dict[str, Any]:
        spec = super().spec()
        spec.update(symmetric=self.symmetric)
        return spec
