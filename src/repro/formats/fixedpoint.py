"""Classic two's-complement fixed-point quantizer (Q-format).

Not one of the paper's five headline formats, but the representative of
the "fixed-point encodings [3, 5, 20]" the introduction argues against:
a static grid ``2**-frac_bits`` with range ``[-2**int_bits,
2**int_bits - 2**-frac_bits]``.  Useful in ablations to show how a fixed
binary point fails on wide-distribution layers even when uniform
quantization (with its float scale) still works.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from .base import Quantizer, RoundMode, ulp_round

__all__ = ["FixedPoint"]


class FixedPoint(Quantizer):
    """``n``-bit two's-complement fixed point with ``frac_bits`` fraction bits."""

    name = "fixedpoint"

    def __init__(self, bits: int, frac_bits: int,
                 round_mode: str = RoundMode.NEAREST_EVEN,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(bits)
        if round_mode not in RoundMode.ALL:
            raise ValueError(f"unknown round mode {round_mode!r}")
        self.frac_bits = int(frac_bits)
        self.round_mode = round_mode
        self._rng = rng

    @property
    def quantum(self) -> float:
        return 2.0 ** (-self.frac_bits)

    @property
    def level_min(self) -> int:
        return -(2 ** (self.bits - 1))

    @property
    def level_max(self) -> int:
        return 2 ** (self.bits - 1) - 1

    def _affine_grid(self, params):
        from .kernels import AffineGrid
        return AffineGrid(step=self.quantum, lo_level=self.level_min,
                          hi_level=self.level_max)

    def _quantize_analytic(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        levels = ulp_round(x / self.quantum, self.round_mode, self._rng)
        return np.clip(levels, self.level_min, self.level_max) * self.quantum

    def codepoints(self) -> np.ndarray:
        levels = np.arange(self.level_min, self.level_max + 1, dtype=np.float64)
        return levels * self.quantum

    def spec(self) -> Dict[str, Any]:
        spec = super().spec()
        spec.update(frac_bits=self.frac_bits)
        return spec
