"""Posit quantizer (paper baseline "Posit", Gustafson's type III unum).

A ``posit<n, es>`` word is sign | regime | exponent (``es`` bits) |
fraction, where the run-length-encoded regime contributes a factor
``useed**k`` with ``useed = 2**(2**es)``.  Posits taper: precision is
highest around +/-1 and falls off toward ``maxpos = useed**(n-2)`` and
``minpos = useed**-(n-2)``.  Like IEEE float (and unlike AdaptivFloat)
the format is non-adaptive — its dynamic range is fixed by ``(n, es)``.

Quantization proceeds by exact enumeration: every positive codepoint is
decoded once per ``(n, es)`` (at most ``2**(n-1) - 1`` values, cached)
and inputs round to the nearest codepoint.  Two underflow conventions
are supported:

* ``"nearest"`` (default): tiny magnitudes may round to zero — the
  convention of software posit-quantization libraries, and the one that
  behaves sensibly for DNN weights.
* ``"saturate"``: the posit-standard rule that nonzero values never
  round to zero (they stop at ``minpos``) and never exceed ``maxpos``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, Tuple

import numpy as np

from .base import Quantizer

__all__ = ["Posit", "decode_posit_word"]


def decode_posit_word(word: int, bits: int, es: int) -> float:
    """Decode one ``bits``-wide posit word (non-negative int) to a float.

    Word 0 is zero; the NaR pattern (1 followed by zeros) raises, since a
    quantization grid has no NaR.  Negative posits are the two's
    complement of their absolute value.
    """
    mask = (1 << bits) - 1
    word &= mask
    if word == 0:
        return 0.0
    nar = 1 << (bits - 1)
    if word == nar:
        raise ValueError("NaR is not a numeric codepoint")
    sign = 1.0
    if word & nar:
        sign = -1.0
        word = (-word) & mask

    body = word & (nar - 1)  # bits after the sign, MSB first
    nbody = bits - 1
    first = (body >> (nbody - 1)) & 1
    run = 0
    for i in range(nbody - 1, -1, -1):
        if (body >> i) & 1 == first:
            run += 1
        else:
            break
    k = (run - 1) if first == 1 else -run
    # Regime consumes `run` bits plus one terminator (if any bits remain).
    consumed = min(run + 1, nbody)
    rest = nbody - consumed
    exp_bits = min(es, rest)
    exp = (body >> (rest - exp_bits)) & ((1 << exp_bits) - 1) if exp_bits else 0
    exp <<= es - exp_bits  # missing low exponent bits are zero
    nfrac = rest - exp_bits
    frac = body & ((1 << nfrac) - 1) if nfrac else 0
    scale = k * (1 << es) + exp
    return sign * 2.0 ** scale * (1.0 + frac / float(1 << nfrac if nfrac else 1))


@lru_cache(maxsize=None)
def _positive_codepoints(bits: int, es: int) -> np.ndarray:
    """Sorted positive posit magnitudes as a read-only float64 array."""
    values = np.array(
        sorted(decode_posit_word(w, bits, es) for w in range(1, 2 ** (bits - 1))),
        dtype=np.float64)
    values.setflags(write=False)
    return values


@lru_cache(maxsize=None)
def _codec_tables(bits: int, es: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached codec tables for ``posit<bits, es>``.

    Returns ``(sorted_mags, sorted_words, decode_lut)``: the positive
    magnitudes in ascending order, the positive posit word of each, and
    the decoded value of every possible ``bits``-wide word (word 0 is
    zero, the NaR pattern decodes to NaN — the numeric poison a flipped
    sign-MSB injects into the datapath).
    """
    words = np.arange(1, 2 ** (bits - 1), dtype=np.uint32)
    values = np.array([decode_posit_word(int(w), bits, es) for w in words],
                      dtype=np.float64)
    order = np.argsort(values)
    sorted_mags = values[order]
    sorted_words = words[order]
    nar = 1 << (bits - 1)
    decode_lut = np.empty(2 ** bits, dtype=np.float64)
    decode_lut[0] = 0.0
    decode_lut[nar] = np.nan
    for w in range(1, 2 ** bits):
        if w != nar:
            decode_lut[w] = decode_posit_word(w, bits, es)
    for table in (sorted_mags, sorted_words, decode_lut):
        table.setflags(write=False)
    return sorted_mags, sorted_words, decode_lut


@lru_cache(maxsize=None)
def _lookup_tables(bits: int, es: int,
                   underflow: str) -> Tuple[np.ndarray, np.ndarray]:
    """Cached ``(table, midpoints)`` pair for nearest-codepoint search.

    Building these per call dominated :meth:`Posit.quantize` for small
    tensors; they only depend on ``(bits, es, underflow)``.
    """
    mags = _positive_codepoints(bits, es)
    if underflow == "saturate":
        table = mags
    else:
        table = np.concatenate([[0.0], mags])
        table.setflags(write=False)
    mids = 0.5 * (table[:-1] + table[1:])
    mids.setflags(write=False)
    return table, mids


class Posit(Quantizer):
    """``posit<n, es>`` nearest-value quantizer."""

    name = "posit"

    def __init__(self, bits: int, es: int = 1, underflow: str = "nearest") -> None:
        super().__init__(bits)
        if bits > 16:
            raise ValueError("enumeration-based posit supports bits <= 16")
        if es < 0:
            raise ValueError(f"es must be non-negative, got {es}")
        if underflow not in ("nearest", "saturate"):
            raise ValueError(f"unknown underflow mode {underflow!r}")
        self.es = int(es)
        self.underflow = underflow

    # ----------------------------------------------------------- structure
    @property
    def useed(self) -> float:
        return 2.0 ** (2 ** self.es)

    @property
    def maxpos(self) -> float:
        return self.useed ** (self.bits - 2)

    @property
    def minpos(self) -> float:
        return self.useed ** -(self.bits - 2)

    # ---------------------------------------------------------- quantizing
    def _quantize_analytic(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        sign = np.sign(x)
        a = np.minimum(np.abs(x), self.maxpos)

        if self.underflow == "saturate":
            a = np.where((a > 0.0) & (a < self.minpos), self.minpos, a)

        table, mids = _lookup_tables(self.bits, self.es, self.underflow)
        idx = np.searchsorted(mids, a, side="right")
        out = table[idx]
        # Exact zeros are representable (word 0) in both modes.
        out = np.where(a == 0.0, 0.0, out)
        return sign * out

    # ---------------------------------------------------------- bit codec
    def bit_fields(self):
        # The regime is run-length encoded, so fields have no fixed
        # positions.  We label the sign plus the regime/exponent prefix
        # (the 2-bit minimum regime + ``es`` exponent bits) as the
        # dynamic-range-carrying "exponent" class and the tail as
        # "mantissa" — an approximation the resilience docs call out.
        exp_like = min(2 + self.es, self.bits - 1)
        return (("sign",) + ("exponent",) * exp_like
                + ("mantissa",) * (self.bits - 1 - exp_like))

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode already-quantized ``values`` into raw posit words.

        Negative values are stored as the two's complement of their
        magnitude's word, per the posit standard.
        """
        v = np.asarray(values, dtype=np.float64)
        if not np.isfinite(v).all():
            raise ValueError("only finite quantized values are encodable")
        mags, words, _ = _codec_tables(self.bits, self.es)
        a = np.abs(v)
        idx = np.clip(np.searchsorted(mags, a), 0, mags.size - 1)
        if not np.array_equal(np.where(a > 0.0, mags[idx], 0.0), a):
            raise ValueError("value is not a posit codepoint")
        word = np.where(a > 0.0, words[idx], np.uint32(0)).astype(np.int64)
        mask = np.int64(2 ** self.bits - 1)
        return np.where(v < 0.0, (-word) & mask, word).astype(np.uint32)

    def decode(self, words: np.ndarray) -> np.ndarray:
        """Decode raw posit words (total function; NaR decodes to NaN)."""
        _, _, decode_lut = _codec_tables(self.bits, self.es)
        w = np.asarray(words, dtype=np.int64) & np.int64(2 ** self.bits - 1)
        return decode_lut[w]

    # -------------------------------------------------------- enumeration
    def codepoints(self) -> np.ndarray:
        mags = _positive_codepoints(self.bits, self.es)
        return np.sort(np.concatenate([-mags, [0.0], mags]))

    def spec(self) -> Dict[str, Any]:
        spec = super().spec()
        spec.update(es=self.es, underflow=self.underflow)
        return spec
