"""Table 3: joint weight + activation quantization after QAR.

Wn/An quantizes both weights and activations to n bits.  Activation
grids are frozen from max-|x| statistics collected during offline
calibration batches (paper Section 5.2), then the model is retrained
quantization-aware and evaluated.

Expected shape (paper Section 4.3): AdaptivFloat W8/A8 matches (or
beats) FP32; W4/A4 collapses on the attention models — whose activation
ranges exceed the format's dynamic range — but survives on the CNN.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis import format_table, save_result
from ..formats import FORMAT_NAMES
from ..nn import (QuantSpec, attach_act_quantizers, attach_weight_quantizers,
                  calibrate, no_grad)
from .common import (MODEL_NAMES, PROFILES, get_bundle, qar_retrain,
                     trained_model)
from .runner import run_cells

__all__ = ["run", "run_cell", "render", "DEFAULT_BITS"]

DEFAULT_BITS = (8, 6, 4)
_CALIBRATION_BATCHES = 4

#: Bump when the cell computation changes, to invalidate cached cells.
_CACHE_SALT = "table3-v2"  # v2: KV-cached decode (same tokens, ~1e-6 logit shift)


def run_cell(cell: Dict) -> float:
    """Compute one Wn/An (model, bits, format) cell: the post-QAR score.

    Deterministic function of the descriptor and module-level, so the
    parallel runner can pickle it; the FP32 checkpoint is expected to be
    warm in the on-disk cache.
    """
    prof = PROFILES[cell["profile"]]
    bundle = get_bundle(cell["model"])
    base_model, task, _ = trained_model(cell["model"], cell["profile"])
    spec = QuantSpec(cell["format"], int(cell["bits"]))
    model, _ = bundle.build()
    model.load_state_dict(base_model.state_dict())
    attach_weight_quantizers(model, spec)
    attach_act_quantizers(model, spec)
    model.eval()
    with calibrate(model), no_grad():
        # train_step is forward-only (callers do the backward); under
        # no_grad the calibration forwards skip graph building entirely
        for batch in bundle.batches(
                task, prof.batch_size, _CALIBRATION_BATCHES, 77):
            bundle.train_step(model, batch)
    qar_retrain(model, task, bundle, prof)
    return bundle.evaluate(model, task, prof.eval_size)


def run(profile: str = "full", bits_list: Sequence[int] = DEFAULT_BITS,
        formats: Sequence[str] = FORMAT_NAMES,
        models: Sequence[str] = MODEL_NAMES, jobs: int = 1) -> Dict:
    PROFILES[profile]  # validate the profile before any work
    result: Dict = {"models": {}, "bits": list(map(int, bits_list)),
                    "formats": list(formats)}
    baselines = {name: trained_model(name, profile)[2] for name in models}
    cells = [
        {"table": "table3", "profile": profile, "model": name,
         "bits": int(bits), "format": fmt}
        for name in models for bits in bits_list for fmt in formats
    ]
    scores = iter(run_cells(run_cell, cells, jobs=jobs,
                            cache_namespace=f"table3_{profile}",
                            cache_salt=_CACHE_SALT))
    for name in models:
        bundle = get_bundle(name)
        grid: Dict = {}
        for bits in bits_list:
            grid[int(bits)] = {fmt: next(scores) for fmt in formats}
        result["models"][name] = {
            "fp32": baselines[name], "metric": bundle.metric,
            "higher_is_better": bundle.higher_is_better, "grid": grid,
        }
    save_result(f"table3_{profile}", result)
    return result


def render(result: Dict) -> str:
    blocks = []
    for name, payload in result["models"].items():
        rows = []
        for bits, per_fmt in payload["grid"].items():
            rows.append([f"W{bits}/A{bits}"]
                        + [per_fmt[fmt] for fmt in result["formats"]])
        blocks.append(format_table(
            ["#bits"] + list(result["formats"]), rows,
            title=(f"Table 3 - {payload['metric']} of {name} after QAR "
                   f"(weights+activations; FP32 = {payload['fp32']:.2f})")))
    return "\n\n".join(blocks)
