"""Experiment drivers: one module per paper table/figure (DESIGN.md §5).

Each driver exposes ``run(...) -> dict`` (computes and persists results)
and ``render(result) -> str`` (the ASCII analogue of the paper's
table/figure).  ``repro.experiments.common`` holds the trained-model
zoo and profiles.
"""

from . import (ablations, activation_ranges, common,
               fig1_weight_ranges, fig4_rms_error,
               fig7_pe_sweep, model_costs, runner, table1_models,
               table2_weight_quant, table3_weight_act_quant,
               table4_accelerator)
from .common import (MODEL_NAMES, PROFILES, get_bundle, qar_retrain,
                     trained_model)
from .runner import run_cells

__all__ = [
    "MODEL_NAMES", "PROFILES", "ablations", "activation_ranges",
    "common", "fig1_weight_ranges",
    "fig4_rms_error", "fig7_pe_sweep", "get_bundle", "model_costs",
    "qar_retrain", "run_cells", "runner",
    "table1_models", "table2_weight_quant", "table3_weight_act_quant",
    "table4_accelerator", "trained_model",
]
