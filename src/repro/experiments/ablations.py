"""Ablations of the design choices DESIGN.md §7 calls out.

Four studies, all on the trained Transformer (the model where encoding
choices matter most):

* **adaptivity** — AdaptivFloat vs an IEEE-like float of identical
  geometry (same ``n``/``e``): isolates the contribution of the dynamic
  ``exp_bias``, the paper's core idea.
* **granularity** — per-layer (paper) vs per-channel ``exp_bias``.
* **round modes** — nearest-even (hardware default) vs nearest-away vs
  stochastic rounding.
* **bfp block size** — whole-tensor shared exponent (paper baseline) vs
  finer blocks, quantifying how much block granularity rescues BFP.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis import format_table, layer_weights, save_result
from ..formats import AdaptivFloat, BlockFloat, RoundMode
from ..metrics import rms_error
from ..nn import QuantSpec, quantize_weights_inplace
from .common import PROFILES, get_bundle, trained_model

__all__ = ["run", "render"]


def _mean_rms(tensors, quantizer) -> float:
    return float(sum(rms_error(t, quantizer.quantize(t))
                     for t in tensors) / len(tensors))


def run(profile: str = "full", bits_list: Sequence[int] = (4, 6, 8),
        model_name: str = "transformer") -> Dict:
    prof = PROFILES[profile]
    bundle = get_bundle(model_name)
    base, task, fp32 = trained_model(model_name, profile)
    state = base.state_dict()
    tensors = [w for _, w in layer_weights(base)]

    # ------------------------------------------------ adaptivity (accuracy)
    adaptivity = {}
    for bits in bits_list:
        scores = {}
        for fmt, overrides in (("adaptivfloat", {"exp_bits": 3}),
                               ("float", {"exp_bits": 3})):
            model, _ = bundle.build()
            model.load_state_dict(state)
            quantize_weights_inplace(model, QuantSpec(fmt, int(bits), overrides))
            model.eval()
            scores[fmt] = bundle.evaluate(model, task, prof.eval_size)
        adaptivity[int(bits)] = scores

    # ------------------------------------------------- granularity (RMS)
    granularity = {}
    for bits in bits_list:
        granularity[int(bits)] = {
            "per_layer": _mean_rms(tensors, AdaptivFloat(int(bits), 3)),
            "per_channel": _mean_rms(tensors,
                                     AdaptivFloat(int(bits), 3, channel_axis=0)),
        }

    # ------------------------------------------------- round modes (RMS)
    round_modes = {}
    for bits in bits_list:
        round_modes[int(bits)] = {
            mode: _mean_rms(tensors, AdaptivFloat(int(bits), 3, round_mode=mode))
            for mode in RoundMode.ALL
        }

    # --------------------------------------------- BFP block size (RMS)
    bfp_blocks = {}
    for bits in bits_list:
        bfp_blocks[int(bits)] = {
            "whole-tensor": _mean_rms(tensors, BlockFloat(int(bits))),
            "block-64": _mean_rms(tensors, BlockFloat(int(bits), block_size=64)),
            "block-16": _mean_rms(tensors, BlockFloat(int(bits), block_size=16)),
            "adaptivfloat": _mean_rms(tensors, AdaptivFloat(int(bits), 3)),
        }

    result = {
        "model": model_name, "fp32": fp32,
        "metric": bundle.metric,
        "adaptivity": adaptivity, "granularity": granularity,
        "round_modes": round_modes, "bfp_blocks": bfp_blocks,
    }
    save_result(f"ablations_{profile}", result)
    return result


def render(result: Dict) -> str:
    blocks = []
    rows = [[bits, s["adaptivfloat"], s["float"]]
            for bits, s in result["adaptivity"].items()]
    blocks.append(format_table(
        ["#bits", "adaptive exp_bias", "fixed IEEE bias"], rows,
        title=(f"Ablation A - the dynamic exp_bias "
               f"({result['metric']} of {result['model']}, same <n,3> geometry; "
               f"FP32 = {result['fp32']:.2f})")))

    rows = [[bits, g["per_layer"], g["per_channel"]]
            for bits, g in result["granularity"].items()]
    blocks.append(format_table(
        ["#bits", "per-layer RMS", "per-channel RMS"], rows,
        title="Ablation B - exp_bias granularity (mean per-layer RMS error)",
        digits=5))

    rows = [[bits] + [m[k] for k in RoundMode.ALL]
            for bits, m in result["round_modes"].items()]
    blocks.append(format_table(
        ["#bits"] + list(RoundMode.ALL), rows,
        title="Ablation C - mantissa rounding mode (mean RMS error)",
        digits=5))

    rows = [[bits, b["whole-tensor"], b["block-64"], b["block-16"],
             b["adaptivfloat"]]
            for bits, b in result["bfp_blocks"].items()]
    blocks.append(format_table(
        ["#bits", "bfp whole", "bfp 64", "bfp 16", "adaptivfloat"], rows,
        title="Ablation D - BFP block size vs AdaptivFloat (mean RMS error)",
        digits=5))
    return "\n\n".join(blocks)
