"""Parallel sweep-cell execution with per-cell result caching.

The experiment drivers (Tables 2/3) are grids of independent cells —
(model, format, bits) — whose results are small JSON payloads but whose
computation (QAR retraining) dominates a sweep's wall clock.  This
module factors the grid traversal out of the drivers:

* :func:`run_cells` executes one top-level *cell function* over a list
  of JSON-serializable cell descriptors, optionally across processes
  (``jobs > 1``, :class:`concurrent.futures.ProcessPoolExecutor`).
* Each cell's result is cached on disk under a content hash of the cell
  descriptor plus a caller-supplied salt (:mod:`repro.cache`), so
  re-running a sweep only computes missing cells.  Set
  ``REPRO_CELL_CACHE=0`` to disable.

Results are returned **in input order** regardless of completion order,
and cells are deterministic functions of their descriptor, so a parallel
sweep produces byte-identical result files to a serial one.

The cell function must be a module-level (picklable) callable taking the
cell descriptor dict and returning a JSON-serializable value.  Anything
process-wide the cells share (e.g. the trained-model checkpoint cache)
should be warmed *before* dispatch to avoid duplicate work in workers.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..cache import content_key, load_cached_json, store_cached_json

__all__ = ["run_cells", "cell_cache_enabled", "shard_ranges",
           "store_and_reload"]


def shard_ranges(total: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``total`` items into contiguous ``(start, count)`` ranges.

    Deterministic near-equal split used to fan the *inside* of a cell
    (e.g. a fault-injection cell's trials) over :func:`run_cells`: at
    most ``shards`` non-empty ranges, earlier ranges at most one item
    longer, concatenating in order reproduces ``range(total)`` exactly.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    shards = min(shards, total)
    if shards == 0:
        return []
    base, extra = divmod(total, shards)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for i in range(shards):
        count = base + (1 if i < extra else 0)
        ranges.append((start, count))
        start += count
    return ranges


def cell_cache_enabled() -> bool:
    """Whether per-cell result caching is active (``REPRO_CELL_CACHE``)."""
    return os.environ.get("REPRO_CELL_CACHE", "1") not in ("0", "false", "no")


def _cell_key(cell: Any, salt: Optional[str]) -> str:
    return content_key({"cell": cell, "salt": salt})


def run_cells(fn: Callable[[Any], Any], cells: Sequence[Any], *,
              jobs: int = 1,
              cache_namespace: Optional[str] = None,
              cache_salt: Optional[str] = None,
              progress: Optional[Callable[[int, int, Any], None]] = None
              ) -> List[Any]:
    """Evaluate ``fn`` over ``cells``; return results in input order.

    Parameters
    ----------
    fn:
        Module-level callable ``fn(cell) -> result``.  Must be picklable
        for ``jobs > 1`` and must return something JSON-serializable
        when caching is on.
    cells:
        JSON-serializable cell descriptors (typically dicts).
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process;
        values above the cell count are clamped.
    cache_namespace:
        Directory name under the artifact cache for per-cell results.
        ``None`` disables caching for this sweep.
    cache_salt:
        Extra string folded into every cell's content hash — bump it (or
        include a version marker) when the cell function's semantics
        change.
    progress:
        Optional callback ``progress(done, total, cell)`` invoked after
        each cell completes (cache hits included).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    if jobs > 1:
        # runtime twin of the PK001/PK002 static checks: fail fast and
        # deterministically (even when every cell would be a cache hit)
        # instead of surfacing a PicklingError from inside the pool
        qualname = getattr(fn, "__qualname__", "") or ""
        if "<lambda>" in qualname or "<locals>" in qualname:
            raise ValueError(
                f"run_cells(jobs={jobs}) needs a module-level cell function, "
                f"got {qualname!r}: workers re-import the callable by "
                "qualified name, and lambdas/closures cannot be pickled")
    cells = list(cells)
    total = len(cells)
    results: List[Any] = [None] * total
    caching = cache_namespace is not None and cell_cache_enabled()

    done = 0
    pending: List[int] = []
    for i, cell in enumerate(cells):
        if caching:
            cached = load_cached_json(cache_namespace, _cell_key(cell, cache_salt))
            if cached is not None:
                results[i] = cached
                done += 1
                if progress is not None:
                    progress(done, total, cell)
                continue
        pending.append(i)

    def _finish(i: int, value: Any) -> None:
        nonlocal done
        if caching:
            value = store_and_reload(cache_namespace, cells[i], cache_salt, value)
        results[i] = value
        done += 1
        if progress is not None:
            progress(done, total, cells[i])

    if jobs == 1 or len(pending) <= 1:
        for i in pending:
            _finish(i, fn(cells[i]))
        return results

    with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
        futures = {pool.submit(fn, cells[i]): i for i in pending}
        remaining = set(futures)
        while remaining:
            finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            for fut in finished:
                _finish(futures[fut], fut.result())
    return results


def store_and_reload(namespace: str, cell: Any, salt: Optional[str],
                     value: Any) -> Any:
    """Persist a cell result, then return its JSON round-trip.

    Returning the round-tripped value (not the original) guarantees a
    cold run and a cache-hit run assemble *identical* result objects —
    e.g. tuples become lists both times, not just on the second run.
    """
    key = _cell_key(cell, salt)
    store_cached_json(namespace, key, value)
    reloaded = load_cached_json(namespace, key)
    return value if reloaded is None else reloaded
