"""Figure 7: per-op energy and throughput/area of INT vs HFINT PEs
across MAC vector sizes (K = 4, 8, 16) and operand widths (4, 8 bit).

Pure analytical-model sweep — no training involved.  Paper reference
values are attached to every point so the renderer can print the
model-vs-paper deltas alongside the headline ratios (HFINT energy
0.97x -> 0.90x of INT; INT 1.04x - 1.21x higher TOPS/mm²).
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis import format_table, save_result
from ..hardware import make_pe

__all__ = ["run", "render", "PAPER_ENERGY", "PAPER_PERF_AREA"]

PAPER_ENERGY = {
    ("int", 4): {4: 127.00, 8: 59.75, 16: 30.36},
    ("hfint", 4): {4: 123.12, 8: 56.39, 16: 27.77},
    ("int", 8): {4: 227.61, 8: 105.80, 16: 52.21},
    ("hfint", 8): {4: 205.27, 8: 98.38, 16: 46.88},
}
PAPER_PERF_AREA = {
    ("int", 4): {4: 1.31, 8: 2.28, 16: 3.90},
    ("hfint", 4): {4: 1.26, 8: 2.10, 16: 3.42},
    ("int", 8): {4: 1.11, 8: 1.59, 16: 2.25},
    ("hfint", 8): {4: 1.02, 8: 1.39, 16: 1.86},
}


def run(vector_sizes: Sequence[int] = (4, 8, 16),
        bit_widths: Sequence[int] = (4, 8)) -> Dict:
    points = []
    for bits in bit_widths:
        for kind in ("int", "hfint"):
            for k in vector_sizes:
                pe = make_pe(kind, bits, k)
                paper_e = PAPER_ENERGY.get((kind, bits), {}).get(k)
                paper_pa = PAPER_PERF_AREA.get((kind, bits), {}).get(k)
                points.append({
                    "pe": pe.name, "kind": kind, "bits": bits, "K": k,
                    "energy_fj_per_op": pe.energy_per_op(),
                    "tops_per_mm2": pe.perf_per_area(),
                    "paper_energy": paper_e, "paper_tops_mm2": paper_pa,
                })
    ratios = {}
    for bits in bit_widths:
        for k in vector_sizes:
            e_int = make_pe("int", bits, k).energy_per_op()
            e_hf = make_pe("hfint", bits, k).energy_per_op()
            pa_int = make_pe("int", bits, k).perf_per_area()
            pa_hf = make_pe("hfint", bits, k).perf_per_area()
            ratios[f"{bits}b_K{k}"] = {
                "hfint_over_int_energy": e_hf / e_int,
                "int_over_hfint_perf_area": pa_int / pa_hf,
            }
    result = {"points": points, "ratios": ratios}
    save_result("fig7", result)
    return result


def render(result: Dict) -> str:
    rows = []
    for p in result["points"]:
        rows.append([
            p["pe"], p["K"], p["energy_fj_per_op"],
            p["paper_energy"] if p["paper_energy"] is not None else "-",
            p["tops_per_mm2"],
            p["paper_tops_mm2"] if p["paper_tops_mm2"] is not None else "-",
        ])
    table = format_table(
        ["PE", "K", "fJ/op", "paper fJ/op", "TOPS/mm2", "paper TOPS/mm2"],
        rows, title="Figure 7 - per-op energy (top) and perf/area (bottom)")
    lines = [table, "", "HFINT/INT energy and INT/HFINT perf-area ratios:"]
    for key, r in result["ratios"].items():
        lines.append(f"  {key}: energy {r['hfint_over_int_energy']:.3f} "
                     f"(paper 0.97->0.90), perf/area "
                     f"{r['int_over_hfint_perf_area']:.3f} (paper 1.04->1.21)")
    return "\n".join(lines)
