"""Table 1: the DNN models under evaluation.

Structure, parameter count, weight range and FP32 score of our three
trained substitutes, printed next to the paper's originals so the
correspondence (and the deliberate down-scaling) is explicit.
"""

from __future__ import annotations

from typing import Dict

from ..analysis import format_table, save_result, weight_range
from .common import MODEL_NAMES, get_bundle, trained_model

__all__ = ["run", "render"]

_STRUCTURE = {
    "transformer": "Attention, FC layers",
    "seq2seq": "Attention, LSTM, FC layers",
    "resnet": "CNN, FC layers",
}
_PAPER = {
    "transformer": {"params": "93M", "range": "[-12.46, 20.41]",
                    "fp32": "BLEU: 27.40", "dataset": "WMT'17 En-De"},
    "seq2seq": {"params": "20M", "range": "[-2.21, 2.39]",
                "fp32": "WER: 13.34", "dataset": "LibriSpeech 960h"},
    "resnet": {"params": "25M", "range": "[-0.78, 1.32]",
               "fp32": "Top-1: 76.2", "dataset": "ImageNet"},
}


def run(profile: str = "full") -> Dict:
    rows = []
    for name in MODEL_NAMES:
        bundle = get_bundle(name)
        model, _, score = trained_model(name, profile)
        lo, hi = weight_range(model)
        rows.append({
            "model": name,
            "structure": _STRUCTURE[name],
            "params": model.num_parameters(),
            "w_min": lo, "w_max": hi,
            "metric": bundle.metric, "fp32": score,
            "paper": _PAPER[name],
        })
    result = {"rows": rows}
    save_result(f"table1_{profile}", result)
    return result


def render(result: Dict) -> str:
    rows = [[r["model"], r["structure"], r["params"],
             f"[{r['w_min']:.2f}, {r['w_max']:.2f}]",
             f"{r['metric']}: {r['fp32']:.2f}",
             f"{r['paper']['params']} / {r['paper']['range']} / "
             f"{r['paper']['fp32']}"]
            for r in result["rows"]]
    return format_table(
        ["model", "structure", "#params", "weight range", "FP32 (ours)",
         "paper (#params / range / FP32)"],
        rows, title="Table 1 - DNN models under evaluation")
