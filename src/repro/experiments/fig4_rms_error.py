"""Figure 4: RMS quantization error per layer, per format, per bit width.

For each trained model, every quantizable weight tensor is quantized by
each of the five formats at 4/6/8 bits, and the per-layer RMS errors are
summarised as the five-number boxplot statistics of the paper's figure.

Expected shape (paper Section 4.1): AdaptivFloat has the lowest mean
error everywhere; among the self-adaptive types BFP's spread is
tightest on the narrow-distribution CNN; posit beats float among the
non-adaptive types.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis import ascii_boxplot, format_table, layer_weights, save_result
from ..formats import FORMAT_NAMES, make_quantizer
from ..metrics import boxplot_stats, rms_error
from .common import MODEL_NAMES, trained_model

__all__ = ["run", "render", "DEFAULT_BITS"]

DEFAULT_BITS = (4, 6, 8)


def run(profile: str = "full", bits_list: Sequence[int] = DEFAULT_BITS,
        models: Sequence[str] = MODEL_NAMES) -> Dict:
    result: Dict = {"models": {}}
    for name in models:
        model, _, _ = trained_model(name, profile)
        tensors = [w for _, w in layer_weights(model)]
        per_bits: Dict = {}
        for bits in bits_list:
            per_fmt: Dict = {}
            for fmt in FORMAT_NAMES:
                quantizer = make_quantizer(fmt, bits)
                errors = [rms_error(t, quantizer.quantize(t)) for t in tensors]
                per_fmt[fmt] = {"stats": boxplot_stats(errors),
                                "per_layer": errors}
            per_bits[int(bits)] = per_fmt
        result["models"][name] = per_bits
    save_result(f"fig4_{profile}", result)
    return result


def render(result: Dict) -> str:
    blocks = []
    for name, per_bits in result["models"].items():
        rows = []
        for bits, per_fmt in per_bits.items():
            for fmt, payload in per_fmt.items():
                s = payload["stats"]
                rows.append([bits, fmt, s["mean"], s["min"], s["q1"],
                             s["median"], s["q3"], s["max"]])
        blocks.append(format_table(
            ["bits", "format", "mean", "min", "q1", "median", "q3", "max"],
            rows, title=f"Figure 4 - per-layer RMS quantization error: {name}",
            digits=4))
        # Boxplot rendering, one panel per bit width (the figure's shape).
        for bits, per_fmt in per_bits.items():
            stats = {fmt: p["stats"] for fmt, p in per_fmt.items()}
            blocks.append(ascii_boxplot(
                stats, title=f"  {name} @ {bits}-bit"))
        # The paper's headline: lowest mean is AdaptivFloat.
        for bits, per_fmt in per_bits.items():
            means = {fmt: p["stats"]["mean"] for fmt, p in per_fmt.items()}
            best = min(means, key=means.get)
            blocks.append(f"  -> lowest mean at {bits}-bit: {best}")
    return "\n".join(blocks)
