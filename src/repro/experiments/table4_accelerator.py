"""Table 4: PPA of the 8-bit INT and HFINT accelerator systems.

Four PEs (K = 16) + 1 MB global buffer running 100 LSTM time steps with
256 hidden units, weight stationary.  Expected shape: identical compute
time (both datapaths sustain the same MAC throughput under the same
pipelining), HFINT at ~0.92x the power and >1x the area of INT.
"""

from __future__ import annotations

from typing import Dict

from ..analysis import format_table, save_result
from ..hardware import PAPER_WORKLOAD, paper_accelerator

__all__ = ["run", "render", "PAPER_TABLE4"]

PAPER_TABLE4 = {
    "int": {"power_mw": 61.38, "area_mm2": 6.9, "runtime_us": 81.2},
    "hfint": {"power_mw": 56.22, "area_mm2": 7.9, "runtime_us": 81.2},
}


def run() -> Dict:
    rows = {}
    for kind in ("int", "hfint"):
        accelerator = paper_accelerator(kind)
        report = accelerator.report(PAPER_WORKLOAD)
        report["cycles_per_step"] = accelerator.cycles_per_step(PAPER_WORKLOAD)
        report["energy_breakdown_fj"] = accelerator.dynamic_energy_fj(
            PAPER_WORKLOAD)
        report["paper"] = PAPER_TABLE4[kind]
        rows[kind] = report
    result = {
        "rows": rows,
        "ratios": {
            "power": rows["hfint"]["power_mw"] / rows["int"]["power_mw"],
            "area": rows["hfint"]["area_mm2"] / rows["int"]["area_mm2"],
            "paper_power": PAPER_TABLE4["hfint"]["power_mw"]
            / PAPER_TABLE4["int"]["power_mw"],
            "paper_area": PAPER_TABLE4["hfint"]["area_mm2"]
            / PAPER_TABLE4["int"]["area_mm2"],
        },
    }
    save_result("table4", result)
    return result


def render(result: Dict) -> str:
    rows = []
    for kind, report in result["rows"].items():
        paper = report["paper"]
        rows.append([
            report["name"],
            report["power_mw"], paper["power_mw"],
            report["area_mm2"], paper["area_mm2"],
            report["runtime_us"], paper["runtime_us"],
        ])
    table = format_table(
        ["system", "mW", "paper mW", "mm2", "paper mm2", "us", "paper us"],
        rows, title="Table 4 - PPA of the 8-bit INT and HFINT accelerators")
    r = result["ratios"]
    return (f"{table}\n"
            f"HFINT/INT power ratio: {r['power']:.3f} "
            f"(paper {r['paper_power']:.3f}); "
            f"area ratio: {r['area']:.3f} (paper {r['paper_area']:.3f})")
