"""Figure 1: range of weights of popular CNN vs NLP models.

Combines the calibrated published-model emulators (BERT/GPT/XLNet/XLM/
Inception/DenseNet, see :mod:`repro.analysis.model_zoo_stats`) with the
actually-measured ranges of our three trained models, demonstrating the
paper's point: LayerNorm sequence models span >10x wider weight ranges
than BatchNorm CNNs.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis import format_table, save_result, weight_range, weight_ranges
from .common import MODEL_NAMES, trained_model

__all__ = ["run", "render"]


def run(profile: str = "full", include_trained: bool = True) -> Dict:
    rows: List[Dict] = list(weight_ranges())
    if include_trained:
        family = {"transformer": "nlp", "seq2seq": "nlp", "resnet": "cnn"}
        for name in MODEL_NAMES:
            model, _, _ = trained_model(name, profile)
            lo, hi = weight_range(model)
            rows.append({"model": f"{name} (ours, trained)",
                         "family": family[name],
                         "w_min": lo, "w_max": hi, "source": "measured"})
    nlp_span = max(max(abs(r["w_min"]), r["w_max"])
                   for r in rows if r["family"] == "nlp")
    cnn_span = max(max(abs(r["w_min"]), r["w_max"])
                   for r in rows if r["family"] == "cnn")
    result = {"rows": rows, "nlp_over_cnn_span": nlp_span / cnn_span}
    save_result(f"fig1_{profile}", result)
    return result


def render(result: Dict) -> str:
    rows = [[r["model"], r["family"], r["w_min"], r["w_max"], r["source"]]
            for r in result["rows"]]
    table = format_table(
        ["model", "family", "w_min", "w_max", "source"], rows,
        title="Figure 1 - range of DNN weight values (CNN vs NLP)")
    ratio = result["nlp_over_cnn_span"]
    return (f"{table}\n"
            f"NLP/CNN max-|w| ratio: {ratio:.1f}x "
            f"(paper: 'more than 10x larger')")
