"""Shared experiment infrastructure: the model zoo, training, caching.

Each of the paper's three model families (Table 1) is wrapped in a
:class:`ModelBundle` exposing ``build`` / ``train`` / ``evaluate`` with
the metric conventions of the paper (BLEU up, WER down, Top-1 up).
Trained FP32 baselines are cached on disk (``REPRO_CACHE_DIR``,
defaulting to ``./artifacts``) so every experiment and benchmark starts
from the same plateaued checkpoint — mirroring the paper's procedure of
retraining *from the plateaued FP32 baseline* (Section 4.2).

Two profiles control cost: ``full`` (the numbers recorded in
EXPERIMENTS.md) and ``fast`` (scaled-down, used by the pytest
benchmarks so the whole harness runs in minutes on one CPU).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Callable, Dict, Iterator, Tuple

import numpy as np

from .. import nn
from ..cache import cache_dir
from ..data import ImageTask, SpeechTask, TranslationTask
from ..metrics import bleu_score, top1_accuracy, wer_score
from ..nn import functional as F
from ..rng import fresh_rng
from ..nn.models import (ResNet, ResNetConfig, Seq2Seq, Seq2SeqConfig,
                         Transformer, TransformerConfig)

__all__ = [
    "MODEL_NAMES", "ModelBundle", "TrainProfile", "PROFILES",
    "cache_dir", "get_bundle", "trained_model", "qar_retrain",
]

MODEL_NAMES = ("transformer", "seq2seq", "resnet")


@dataclasses.dataclass(frozen=True)
class TrainProfile:
    """Cost knobs for baseline training / QAR / evaluation."""

    name: str
    train_steps: Dict[str, int]
    qar_steps: Dict[str, int]
    batch_size: int
    eval_size: int
    lr: float
    qar_lr: float


PROFILES: Dict[str, TrainProfile] = {
    "full": TrainProfile(
        name="full",
        train_steps={"transformer": 2200, "seq2seq": 1600, "resnet": 1500},
        qar_steps={"transformer": 250, "seq2seq": 300, "resnet": 300},
        batch_size=32, eval_size=128, lr=2e-3, qar_lr=5e-4),
    "fast": TrainProfile(
        name="fast",
        train_steps={"transformer": 1500, "seq2seq": 900, "resnet": 700},
        qar_steps={"transformer": 60, "seq2seq": 80, "resnet": 80},
        batch_size=32, eval_size=48, lr=2e-3, qar_lr=5e-4),
    # smoke-test scale: exercises every code path in seconds; the scores
    # are meaningless and asserted only structurally.
    "tiny": TrainProfile(
        name="tiny",
        train_steps={"transformer": 20, "seq2seq": 20, "resnet": 15},
        qar_steps={"transformer": 5, "seq2seq": 5, "resnet": 5},
        batch_size=8, eval_size=16, lr=2e-3, qar_lr=5e-4),
}


@dataclasses.dataclass
class ModelBundle:
    """One model family: constructors, training loop, evaluation."""

    name: str
    metric: str
    higher_is_better: bool
    paper_fp32: float
    build: Callable[[int], Tuple[nn.Module, object]]
    train_step: Callable[[nn.Module, object], nn.Tensor]   # (model, batch) -> loss
    batches: Callable[[object, int, int, int], Iterator]   # (task, bs, n, seed)
    evaluate: Callable[[nn.Module, object, int], float]

    def failure_score(self) -> float:
        """The score of a completely collapsed model (paper's 0.0 / inf)."""
        return 0.0 if self.higher_is_better else float("inf")


# ------------------------------------------------------------- transformer
def _build_transformer(seed: int = 1):
    rng = fresh_rng(seed)
    return Transformer(TransformerConfig(), rng=rng), TranslationTask()


def _transformer_step(model, batch):
    logits = model(batch.src, batch.tgt_in)
    return F.cross_entropy(logits, batch.tgt_out, ignore_index=0,
                           label_smoothing=0.05)


def _transformer_eval(model, task, eval_size: int) -> float:
    model.eval()
    batch = task.eval_set(eval_size)
    hyp = model.greedy_decode(batch.src, max_len=16)
    score = bleu_score(task.strip(batch.tgt_out), task.strip(hyp))
    model.train()
    return score


# ----------------------------------------------------------------- seq2seq
def _build_seq2seq(seed: int = 1):
    rng = fresh_rng(seed)
    return Seq2Seq(Seq2SeqConfig(), rng=rng), SpeechTask()


def _seq2seq_step(model, batch):
    logits = model(batch.frames, batch.tgt_in)
    return F.cross_entropy(logits, batch.tgt_out, ignore_index=0)


def _seq2seq_eval(model, task, eval_size: int) -> float:
    model.eval()
    batch = task.eval_set(eval_size)
    hyp = model.greedy_decode(batch.frames)
    score = wer_score(batch.refs, task.strip(hyp))
    model.train()
    return score


# ------------------------------------------------------------------ resnet
def _build_resnet(seed: int = 1):
    rng = fresh_rng(seed)
    return ResNet(ResNetConfig(blocks_per_stage=1), rng=rng), ImageTask()


def _resnet_step(model, batch):
    return F.cross_entropy(model(batch.images), batch.labels)


def _resnet_eval(model, task, eval_size: int) -> float:
    model.eval()
    batch = task.eval_set(max(eval_size, 256))
    with nn.no_grad():
        score = top1_accuracy(model(batch.images).data, batch.labels)
    model.train()
    return score


_BUNDLES: Dict[str, ModelBundle] = {
    "transformer": ModelBundle(
        name="transformer", metric="BLEU", higher_is_better=True,
        paper_fp32=27.4, build=_build_transformer,
        train_step=_transformer_step,
        batches=lambda task, bs, n, seed: task.batches(bs, n, seed),
        evaluate=_transformer_eval),
    "seq2seq": ModelBundle(
        name="seq2seq", metric="WER", higher_is_better=False,
        paper_fp32=13.34, build=_build_seq2seq,
        train_step=_seq2seq_step,
        batches=lambda task, bs, n, seed: task.batches(bs, n, seed),
        evaluate=_seq2seq_eval),
    "resnet": ModelBundle(
        name="resnet", metric="Top-1", higher_is_better=True,
        paper_fp32=76.2, build=_build_resnet,
        train_step=_resnet_step,
        batches=lambda task, bs, n, seed: task.batches(bs, n, seed),
        evaluate=_resnet_eval),
}


def get_bundle(name: str) -> ModelBundle:
    if name not in _BUNDLES:
        raise ValueError(f"unknown model {name!r}; known: {MODEL_NAMES}")
    return _BUNDLES[name]


# ---------------------------------------------------------------- training
def _train(model: nn.Module, task, bundle: ModelBundle, steps: int,
           batch_size: int, lr: float, seed_offset: int = 0) -> None:
    optimizer = nn.Adam(model.parameters(), lr=lr)
    model.train()
    for batch in bundle.batches(task, batch_size, steps, seed_offset):
        loss = bundle.train_step(model, batch)
        optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(model.parameters(), 5.0)
        optimizer.step()


def _cache_key(name: str, profile: TrainProfile) -> str:
    payload = json.dumps({
        "name": name, "steps": profile.train_steps[name],
        "batch": profile.batch_size, "lr": profile.lr, "version": 7,
    }, sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()[:12]


def trained_model(name: str, profile: str = "full",
                  force_retrain: bool = False
                  ) -> Tuple[nn.Module, object, float]:
    """Return ``(model, task, fp32_score)``; trains and caches on first use."""
    bundle = get_bundle(name)
    prof = PROFILES[profile]
    model, task = bundle.build()
    path = cache_dir() / f"{name}_{prof.name}_{_cache_key(name, prof)}.npz"
    if path.exists() and not force_retrain:
        blob = np.load(path, allow_pickle=False)
        state = {k: blob[k] for k in blob.files if k != "__score__"}
        model.load_state_dict(state)
        score = float(blob["__score__"])
        model.eval()
        return model, task, score
    _train(model, task, bundle, prof.train_steps[name],
           prof.batch_size, prof.lr)
    score = bundle.evaluate(model, task, prof.eval_size)
    state = model.state_dict()
    state["__score__"] = np.asarray(score)
    np.savez(path, **state)
    model.eval()
    return model, task, score


def qar_retrain(model: nn.Module, task, bundle: ModelBundle,
                profile: TrainProfile, seed_offset: int = 50_000) -> None:
    """Quantization-aware retraining: short fine-tune with the fake
    quantizers already attached (paper Section 4.2, 'QAR')."""
    _train(model, task, bundle, profile.qar_steps[bundle.name],
           profile.batch_size, profile.qar_lr, seed_offset)
    model.eval()
