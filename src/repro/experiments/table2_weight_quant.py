"""Table 2: weight bit compression, PTQ and QAR, five formats x three models.

For every (model, bits, format) cell the driver reports two scores:

* **PTQ** — post-training quantization: the plateaued FP32 weights are
  quantized in place (per-layer self-adaptive parameters) and the model
  is evaluated as-is.
* **QAR** — quantization-aware retraining: starting again from the FP32
  baseline, weight fake-quantizers (STE) are attached and the model is
  fine-tuned briefly before evaluation, exactly the paper's procedure
  ("post-training quantization / post-quantization aware retraining").

Expected shape (paper Section 4.2): everything is fine at 16/8 bits; at
<=6 bits the non-adaptive formats (float, posit) and the shared-grid
formats (BFP, uniform) collapse on the wide-distribution models while
AdaptivFloat degrades gracefully; QAR recovers AdaptivFloat to near (or
slightly above, via the noise-regularization effect) the FP32 score.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis import format_table, save_result
from ..formats import FORMAT_NAMES
from ..nn import QuantSpec, attach_weight_quantizers, quantize_weights_inplace
from .common import (MODEL_NAMES, PROFILES, get_bundle, qar_retrain,
                     trained_model)
from .runner import run_cells

__all__ = ["run", "run_cell", "render", "DEFAULT_BITS"]

DEFAULT_BITS = (16, 8, 7, 6, 5, 4)

#: Bump when the cell computation changes, to invalidate cached cells.
_CACHE_SALT = "table2-v2"  # v2: KV-cached decode (same tokens, ~1e-6 logit shift)


def _clone_into(bundle, base_state):
    model, task = bundle.build()
    model.load_state_dict(base_state)
    return model, task


def run_cell(cell: Dict) -> Dict:
    """Compute one (model, bits, format) cell: ``{"ptq": .., "qar": ..}``.

    Deterministic function of the descriptor (all training and data
    streams are seeded), and module-level so the parallel runner can
    pickle it.  The FP32 checkpoint comes from the on-disk cache, which
    :func:`run` warms before dispatching.
    """
    prof = PROFILES[cell["profile"]]
    bundle = get_bundle(cell["model"])
    base_model, task, _ = trained_model(cell["model"], cell["profile"])
    base_state = base_model.state_dict()
    spec = QuantSpec(cell["format"], int(cell["bits"]))
    # --- PTQ
    model, _ = _clone_into(bundle, base_state)
    quantize_weights_inplace(model, spec)
    model.eval()
    ptq = bundle.evaluate(model, task, prof.eval_size)
    # --- QAR
    if cell["include_qar"]:
        model, _ = _clone_into(bundle, base_state)
        attach_weight_quantizers(model, spec)
        qar_retrain(model, task, bundle, prof)
        qar = bundle.evaluate(model, task, prof.eval_size)
    else:
        qar = None
    return {"ptq": ptq, "qar": qar}


def run(profile: str = "full", bits_list: Sequence[int] = DEFAULT_BITS,
        formats: Sequence[str] = FORMAT_NAMES,
        models: Sequence[str] = MODEL_NAMES,
        include_qar: bool = True, jobs: int = 1) -> Dict:
    PROFILES[profile]  # validate the profile before any work
    result: Dict = {"models": {}, "bits": list(map(int, bits_list)),
                    "formats": list(formats)}
    # Warm the FP32 checkpoints serially (and collect baselines) so
    # parallel workers only ever *load* them.
    baselines = {name: trained_model(name, profile)[2] for name in models}
    cells = [
        {"table": "table2", "profile": profile, "model": name,
         "bits": int(bits), "format": fmt, "include_qar": bool(include_qar)}
        for name in models for bits in bits_list for fmt in formats
    ]
    scores = iter(run_cells(run_cell, cells, jobs=jobs,
                            cache_namespace=f"table2_{profile}",
                            cache_salt=_CACHE_SALT))
    for name in models:
        bundle = get_bundle(name)
        grid: Dict = {}
        for bits in bits_list:
            grid[int(bits)] = {fmt: next(scores) for fmt in formats}
        result["models"][name] = {
            "fp32": baselines[name], "metric": bundle.metric,
            "higher_is_better": bundle.higher_is_better, "grid": grid,
        }
    save_result(f"table2_{profile}", result)
    return result


def render(result: Dict) -> str:
    blocks = []
    for name, payload in result["models"].items():
        rows = []
        for bits, per_fmt in payload["grid"].items():
            row = [bits]
            for fmt in result["formats"]:
                cell = per_fmt[fmt]
                if cell["qar"] is None:
                    row.append(f"{cell['ptq']:.2f}")
                else:
                    row.append(f"{cell['ptq']:.2f} / {cell['qar']:.2f}")
            rows.append(row)
        blocks.append(format_table(
            ["#bits"] + list(result["formats"]), rows,
            title=(f"Table 2 - {payload['metric']} of {name} "
                   f"(PTQ / QAR; FP32 = {payload['fp32']:.2f})")))
    return "\n\n".join(blocks)
