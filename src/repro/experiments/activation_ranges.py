"""Extension analysis: per-site activation dynamic range.

Paper Section 4.3 explains the W4/A4 collapse on the sequence models:
"many of the activations from the attention mechanism fall outside of
the available dynamic range of the number format."  This driver
measures exactly that — for every activation-quantization site it
calibrates the AdaptivFloat grid at a given word size and reports what
fraction of calibration-batch activations falls below ``value_min``
(crushed to zero / the minimum) at that site, plus the site's
max/median dynamic ratio.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..analysis import format_table, save_result
from ..formats import AdaptivFloat
from ..nn import Tensor, no_grad
from ..nn.quantize import DEFAULT_QUANTIZED_LAYERS
from .common import MODEL_NAMES, PROFILES, get_bundle, trained_model

__all__ = ["run", "render"]


class _RangeProbe:
    """An act_fake_quant stand-in that records raw activations."""

    def __init__(self) -> None:
        self.max_abs = 0.0
        self.samples: list = []

    def __call__(self, x: Tensor) -> Tensor:
        a = np.abs(x.data).ravel()
        if a.size:
            self.max_abs = max(self.max_abs, float(a.max()))
            take = a if a.size <= 4096 else a[:: a.size // 4096][:4096]
            self.samples.append(take.astype(np.float32))
        return x


def run(profile: str = "full", bits: int = 4,
        models: Sequence[str] = MODEL_NAMES) -> Dict:
    prof = PROFILES[profile]
    fmt = AdaptivFloat(bits, 3)
    result: Dict = {"bits": int(bits), "models": {}}
    for name in models:
        bundle = get_bundle(name)
        model, task, _ = trained_model(name, profile)
        model.eval()
        probes: Dict[str, _RangeProbe] = {}
        for mod_name, module in model.named_modules():
            if isinstance(module, DEFAULT_QUANTIZED_LAYERS):
                probe = _RangeProbe()
                module.act_fake_quant = probe
                probes[mod_name] = probe
        with no_grad():
            # observation forwards only — no graph needed
            for batch in bundle.batches(task, prof.batch_size, 2, 123):
                bundle.train_step(model, batch)
        rows = []
        for site, probe in probes.items():
            if not probe.samples:
                continue
            pooled = np.concatenate(probe.samples)
            nonzero = pooled[pooled > 0]
            if nonzero.size == 0:
                continue
            bias = fmt.fit(np.asarray([probe.max_abs]))["exp_bias"]
            vmin, _ = fmt.range_for_bias(int(bias))
            underflow = float((nonzero < float(vmin)).mean())
            rows.append({
                "site": site,
                "max_abs": probe.max_abs,
                "dynamic_ratio": probe.max_abs / float(np.median(nonzero)),
                "underflow_fraction": underflow,
            })
        for module in model.modules():
            module.act_fake_quant = None
        rows.sort(key=lambda r: -r["underflow_fraction"])
        result["models"][name] = {
            "sites": rows,
            "mean_underflow": float(np.mean(
                [r["underflow_fraction"] for r in rows])),
        }
    save_result(f"activation_ranges_{profile}", result)
    return result


def render(result: Dict) -> str:
    blocks = []
    for name, payload in result["models"].items():
        rows = [[r["site"], r["max_abs"], r["dynamic_ratio"],
                 r["underflow_fraction"]] for r in payload["sites"][:8]]
        blocks.append(format_table(
            ["site", "max|x|", "max/median", f"underflow@{result['bits']}b"],
            rows,
            title=(f"Activation ranges - {name} (mean underflow "
                   f"{payload['mean_underflow']:.2f})"),
            digits=3))
    return "\n\n".join(blocks)
