"""Extension table: inference cost of our models on both accelerators.

Not a paper artifact, but the question the co-design enables a user to
answer: for each trained model, how many MACs does one inference take
(measured by running it under the MAC profiler), and what latency/energy
would the 8-bit INT vs HFINT PE arrays spend on it?  The HFINT energy
advantage from Fig. 7 carries over one-for-one since the arrays sustain
identical throughput.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..analysis import format_table, save_result
from ..hardware import count_macs, estimate_inference_cost
from .common import MODEL_NAMES, trained_model

__all__ = ["run", "render"]


def _one_inference(name: str, model, task) -> int:
    if name == "transformer":
        batch = task.eval_set(1)
        with count_macs() as counter:
            model.greedy_decode(batch.src, max_len=16)
    elif name == "seq2seq":
        batch = task.eval_set(1)
        with count_macs() as counter:
            model.greedy_decode(batch.frames)
    else:
        batch = task.eval_set(1)
        with count_macs() as counter:
            model.predict(batch.images[:1])
    return counter.total


def run(profile: str = "full",
        models: Sequence[str] = MODEL_NAMES) -> Dict:
    rows = []
    for name in models:
        model, task, _ = trained_model(name, profile)
        model.eval()
        macs = _one_inference(name, model, task)
        int_cost = estimate_inference_cost(macs, "int", bits=8)
        hf_cost = estimate_inference_cost(macs, "hfint", bits=8)
        rows.append({
            "model": name, "macs": macs,
            "latency_us": hf_cost.latency_us,
            "int_energy_uj": int_cost.energy_uj,
            "hfint_energy_uj": hf_cost.energy_uj,
            "energy_ratio": hf_cost.energy_uj / int_cost.energy_uj,
        })
    result = {"rows": rows}
    save_result(f"model_costs_{profile}", result)
    return result


def render(result: Dict) -> str:
    rows = [[r["model"], r["macs"], r["latency_us"],
             r["int_energy_uj"], r["hfint_energy_uj"], r["energy_ratio"]]
            for r in result["rows"]]
    return format_table(
        ["model", "MACs/inference", "latency us", "INT8 uJ", "HFINT8 uJ",
         "HFINT/INT"],
        rows, title=("Extension - one-inference cost on the 4-PE arrays "
                     "(K=16, 8-bit)"), digits=3)
