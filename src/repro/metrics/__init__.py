"""Evaluation metrics: BLEU, WER, top-1 accuracy, RMS quantization error."""

from .accuracy import top1_accuracy, top_k_accuracy
from .bleu import bleu_score, ngram_precisions
from .error import boxplot_stats, rms_error
from .wer import edit_distance, wer_score

__all__ = [
    "bleu_score", "boxplot_stats", "edit_distance", "ngram_precisions",
    "rms_error", "top1_accuracy", "top_k_accuracy", "wer_score",
]
