"""Corpus-level BLEU (Papineni et al.), the Transformer metric.

Standard BLEU-4: clipped n-gram precision up to order 4, geometric mean,
multiplied by the brevity penalty, reported on the 0-100 scale used by
the paper (FP32 Transformer BLEU = 27.4).  An epsilon floor on n-gram
precision (``smooth``) keeps short or degenerate corpora finite, which
matters when a badly-quantized model emits garbage — the paper reports
such collapses as BLEU 0.0.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["bleu_score", "ngram_precisions"]


def _ngrams(tokens: Sequence[int], order: int) -> Counter:
    return Counter(tuple(tokens[i:i + order])
                   for i in range(len(tokens) - order + 1))


def ngram_precisions(references: List[Sequence[int]],
                     hypotheses: List[Sequence[int]],
                     max_order: int = 4) -> Tuple[List[float], int, int]:
    """Clipped corpus n-gram precisions plus total ref/hyp lengths."""
    if len(references) != len(hypotheses):
        raise ValueError(f"{len(references)} references vs "
                         f"{len(hypotheses)} hypotheses")
    matches = [0] * max_order
    totals = [0] * max_order
    ref_len = 0
    hyp_len = 0
    for ref, hyp in zip(references, hypotheses):
        ref_len += len(ref)
        hyp_len += len(hyp)
        for order in range(1, max_order + 1):
            ref_counts = _ngrams(ref, order)
            hyp_counts = _ngrams(hyp, order)
            totals[order - 1] += max(len(hyp) - order + 1, 0)
            matches[order - 1] += sum(
                min(count, ref_counts[gram])
                for gram, count in hyp_counts.items())
    precisions = [m / t if t > 0 else 0.0 for m, t in zip(matches, totals)]
    return precisions, ref_len, hyp_len


def _order_totals(hypotheses: List[Sequence[int]],
                  max_order: int) -> Tuple[None, None, List[int]]:
    """Total available n-gram slots per order across the hypothesis corpus."""
    totals = [0] * max_order
    for hyp in hypotheses:
        for order in range(1, max_order + 1):
            totals[order - 1] += max(len(hyp) - order + 1, 0)
    return None, None, totals


def bleu_score(references: List[Sequence[int]],
               hypotheses: List[Sequence[int]],
               max_order: int = 4, smooth: float = 1e-9) -> float:
    """Corpus BLEU on the 0-100 scale."""
    precisions, ref_len, hyp_len = ngram_precisions(
        references, hypotheses, max_order)
    if hyp_len == 0:
        return 0.0
    # Effective order: a corpus of very short sentences has no high-order
    # n-grams at all; those orders carry no evidence and are excluded
    # (otherwise a perfect single-token corpus would score 0).
    _, _, totals = _order_totals(hypotheses, max_order)
    usable = [p for p, t in zip(precisions, totals) if t > 0]
    if not usable:
        return 0.0
    if min(usable) <= 0.0 and smooth <= 0.0:
        return 0.0
    log_precision = float(np.mean(
        [np.log(max(p, smooth)) for p in usable]))
    brevity = 1.0 if hyp_len > ref_len else float(
        np.exp(1.0 - ref_len / hyp_len))
    return 100.0 * brevity * float(np.exp(log_precision))
