"""Quantization-error metrics (paper Fig. 4)."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["rms_error", "boxplot_stats"]


def rms_error(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Root-mean-square error between a tensor and its quantized image."""
    reference = np.asarray(reference, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    if reference.shape != quantized.shape:
        raise ValueError(f"shape mismatch {reference.shape} vs {quantized.shape}")
    diff = quantized - reference
    return float(np.sqrt(np.mean(diff * diff)))


def boxplot_stats(values: Sequence[float]) -> Dict[str, float]:
    """The five-number summary + mean backing one Fig. 4 boxplot."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no values")
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    return {
        "min": float(arr.min()),
        "q1": float(q1),
        "median": float(median),
        "q3": float(q3),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }
