"""Classification accuracy, the ResNet metric (paper: Top-1 = 76.2)."""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_accuracy", "top1_accuracy"]


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Top-k accuracy on the 0-100 scale.

    ``logits``: (N, classes); ``labels``: (N,) integer class ids.
    """
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if len(labels) != len(logits):
        raise ValueError("logits/labels length mismatch")
    top = np.argsort(-logits, axis=1)[:, :k]
    hit = (top == labels[:, None]).any(axis=1)
    return 100.0 * float(hit.mean())


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    return top_k_accuracy(logits, labels, k=1)
