"""Word error rate (Levenshtein), the seq2seq speech metric.

Corpus WER = total (substitutions + insertions + deletions) over all
utterances, divided by total reference words, on the 0-100 scale the
paper uses (FP32 seq2seq WER = 13.34).  WER can exceed 100 when a model
hallucinates long outputs — the paper prints "inf"-like collapses for
4-bit float/posit; we report the actual (large) number.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["edit_distance", "wer_score"]


def edit_distance(reference: Sequence[int], hypothesis: Sequence[int]) -> int:
    """Levenshtein distance with unit costs (two-row DP)."""
    ref, hyp = list(reference), list(hypothesis)
    if not ref:
        return len(hyp)
    if not hyp:
        return len(ref)
    previous = np.arange(len(hyp) + 1)
    current = np.empty_like(previous)
    for i, r in enumerate(ref, start=1):
        current[0] = i
        for j, h in enumerate(hyp, start=1):
            current[j] = min(previous[j] + 1,          # deletion
                             current[j - 1] + 1,       # insertion
                             previous[j - 1] + (r != h))  # substitution
        previous, current = current, previous
    return int(previous[len(hyp)])


def wer_score(references: List[Sequence[int]],
              hypotheses: List[Sequence[int]]) -> float:
    """Corpus word error rate on the 0-100 scale."""
    if len(references) != len(hypotheses):
        raise ValueError(f"{len(references)} references vs "
                         f"{len(hypotheses)} hypotheses")
    total_edits = 0
    total_words = 0
    for ref, hyp in zip(references, hypotheses):
        total_edits += edit_distance(ref, hyp)
        total_words += len(ref)
    if total_words == 0:
        raise ValueError("empty reference corpus")
    return 100.0 * total_edits / total_words
