"""Parameter initialisation schemes."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..rng import GLOBAL_SEED, default_rng

__all__ = ["GLOBAL_SEED", "apply_row_gains", "default_rng",
           "kaiming_normal", "kaiming_uniform", "normal", "uniform", "xavier_normal", "xavier_uniform",
           "zeros", "ones"]


def zeros(shape: Sequence[int]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Sequence[int]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def uniform(shape: Sequence[int], low: float, high: float,
            rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return default_rng(rng).uniform(low, high, size=shape).astype(np.float32)


def normal(shape: Sequence[int], std: float = 0.02,
           rng: Optional[np.random.Generator] = None) -> np.ndarray:
    return (default_rng(rng).standard_normal(size=shape) * std).astype(np.float32)


def xavier_uniform(shape: Sequence[int], fan_in: int, fan_out: int,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    bound = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return uniform(shape, -bound, bound, rng)


def xavier_normal(shape: Sequence[int], fan_in: int, fan_out: int,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    std = float(np.sqrt(2.0 / (fan_in + fan_out)))
    return normal(shape, std=std, rng=rng)


def kaiming_normal(shape: Sequence[int], fan_in: int,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    std = float(np.sqrt(1.0 / fan_in)) if fan_in > 0 else 0.0
    return normal(shape, std=std, rng=rng)


def kaiming_uniform(shape: Sequence[int], fan_in: int,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    bound = float(np.sqrt(3.0 / fan_in)) if fan_in > 0 else 0.0
    return uniform(shape, -bound, bound, rng)


def apply_row_gains(weight: np.ndarray, spread: float,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Scale each row by a log-uniform gain in ``[1/spread, spread]``.

    Large pretrained NLP models exhibit weight tensors whose extreme
    values sit one to two orders of magnitude above the bulk (paper
    Fig. 1) — a property small models trained for minutes never develop.
    Heavy-tailed per-row gains, applied at initialization and trained
    through, reproduce that *within-tensor* dynamic range with the large
    rows remaining functionally load-bearing (DESIGN.md §2).  With
    ``spread <= 1`` this is a no-op.
    """
    if spread <= 1.0:
        return weight
    rng = default_rng(rng)
    shape = (weight.shape[0],) + (1,) * (weight.ndim - 1)
    gains = np.exp(rng.uniform(np.log(1.0 / spread), np.log(spread),
                               size=shape))
    return (weight * gains).astype(np.float32)
