"""A small training loop with history, gradient clipping and callbacks.

The experiment drivers use their own minimal loop
(:func:`repro.experiments.common._train`) for exact parity with the
paper's procedure; :class:`Trainer` is the library-grade equivalent for
downstream users — loss history, periodic evaluation, LR scheduling,
early stopping and best-checkpoint tracking.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from . import clip_grad_norm
from .module import Module
from .optim import Optimizer
from .schedules import LRScheduler, Schedule
from .tensor import Tensor

__all__ = ["Trainer", "TrainHistory"]


@dataclasses.dataclass
class TrainHistory:
    """Per-step losses and periodic evaluation scores."""

    losses: List[float] = dataclasses.field(default_factory=list)
    eval_steps: List[int] = dataclasses.field(default_factory=list)
    eval_scores: List[float] = dataclasses.field(default_factory=list)
    learning_rates: List[float] = dataclasses.field(default_factory=list)

    def smoothed_loss(self, window: int = 25) -> float:
        if not self.losses:
            raise ValueError("no steps recorded")
        tail = self.losses[-window:]
        return float(np.mean(tail))


class Trainer:
    """Drive (model, optimizer) over a batch iterable.

    Parameters
    ----------
    loss_fn:
        ``(model, batch) -> Tensor`` scalar loss.
    eval_fn:
        optional ``(model) -> float`` metric, run every ``eval_every``
        steps; with ``higher_is_better`` it also tracks the best
        parameters (restored by :meth:`restore_best`).
    """

    def __init__(self, model: Module, optimizer: Optimizer,
                 loss_fn: Callable[[Module, object], Tensor],
                 eval_fn: Optional[Callable[[Module], float]] = None,
                 eval_every: int = 100, higher_is_better: bool = True,
                 max_grad_norm: Optional[float] = 5.0,
                 schedule: Optional[Schedule] = None,
                 patience: Optional[int] = None) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.eval_fn = eval_fn
        self.eval_every = eval_every
        self.higher_is_better = higher_is_better
        self.max_grad_norm = max_grad_norm
        self.scheduler = LRScheduler(optimizer, schedule) if schedule else None
        self.patience = patience
        self.history = TrainHistory()
        self._best_score: Optional[float] = None
        self._best_state: Optional[Dict[str, np.ndarray]] = None
        self._stale_evals = 0

    # ------------------------------------------------------------- running
    def fit(self, batches: Iterable) -> TrainHistory:
        self.model.train()
        for step, batch in enumerate(batches):
            loss = self.loss_fn(self.model, batch)
            self.optimizer.zero_grad()
            loss.backward()
            if self.max_grad_norm is not None:
                clip_grad_norm(self.model.parameters(), self.max_grad_norm)
            self.optimizer.step()
            if self.scheduler is not None:
                self.scheduler.step()
            self.history.losses.append(loss.item())
            self.history.learning_rates.append(self.optimizer.lr)
            if self.eval_fn and (step + 1) % self.eval_every == 0:
                if self._evaluate(step + 1):
                    break  # early stop
        self.model.eval()
        return self.history

    def _evaluate(self, step: int) -> bool:
        score = float(self.eval_fn(self.model))
        self.history.eval_steps.append(step)
        self.history.eval_scores.append(score)
        improved = (self._best_score is None
                    or (score > self._best_score) == self.higher_is_better
                    and score != self._best_score)
        if improved:
            self._best_score = score
            self._best_state = self.model.state_dict()
            self._stale_evals = 0
        else:
            self._stale_evals += 1
        self.model.train()
        return (self.patience is not None
                and self._stale_evals >= self.patience)

    # ------------------------------------------------------------ weights
    @property
    def best_score(self) -> Optional[float]:
        return self._best_score

    def restore_best(self) -> None:
        """Load the best-evaluated parameters back into the model."""
        if self._best_state is None:
            raise RuntimeError("no evaluation has run yet")
        self.model.load_state_dict(self._best_state)
