"""Learning-rate schedules.

The QAR fine-tunes of Table 2/3 use a constant small LR, but the FP32
baselines benefit from warmup (the heavier-tailed inits make early
optimization noisy); these schedules are standard torch-style callables
attached to any optimizer via :class:`LRScheduler`.
"""

from __future__ import annotations

import math
from typing import Callable

from .optim import Optimizer

__all__ = ["LRScheduler", "constant", "linear_warmup", "cosine_decay",
           "warmup_cosine", "inverse_sqrt"]

Schedule = Callable[[int], float]


def constant() -> Schedule:
    """Multiplier 1.0 forever."""
    return lambda step: 1.0


def linear_warmup(warmup_steps: int) -> Schedule:
    """Ramp 0 -> 1 over ``warmup_steps``, then hold."""
    if warmup_steps < 1:
        raise ValueError("warmup_steps must be >= 1")

    def schedule(step: int) -> float:
        return min(1.0, (step + 1) / warmup_steps)

    return schedule


def cosine_decay(total_steps: int, floor: float = 0.0) -> Schedule:
    """Cosine from 1 down to ``floor`` over ``total_steps``."""
    if total_steps < 1:
        raise ValueError("total_steps must be >= 1")

    def schedule(step: int) -> float:
        progress = min(1.0, step / total_steps)
        return floor + (1.0 - floor) * 0.5 * (1.0 + math.cos(math.pi * progress))

    return schedule


def warmup_cosine(warmup_steps: int, total_steps: int,
                  floor: float = 0.0) -> Schedule:
    """Linear warmup into a cosine decay (the common transformer recipe)."""
    warm = linear_warmup(warmup_steps)
    decay = cosine_decay(max(1, total_steps - warmup_steps), floor)

    def schedule(step: int) -> float:
        if step < warmup_steps:
            return warm(step)
        return decay(step - warmup_steps)

    return schedule


def inverse_sqrt(warmup_steps: int) -> Schedule:
    """The original Transformer schedule (scaled to peak 1.0)."""
    if warmup_steps < 1:
        raise ValueError("warmup_steps must be >= 1")

    def schedule(step: int) -> float:
        s = step + 1
        return min(s / warmup_steps, math.sqrt(warmup_steps / s))

    return schedule


class LRScheduler:
    """Drives an optimizer's learning rate from a schedule multiplier."""

    def __init__(self, optimizer: Optimizer, schedule: Schedule) -> None:
        self.optimizer = optimizer
        self.schedule = schedule
        self.base_lr = optimizer.lr
        self.step_count = 0
        optimizer.lr = self.base_lr * schedule(0)

    def step(self) -> float:
        """Advance one step; returns the new learning rate."""
        self.step_count += 1
        self.optimizer.lr = self.base_lr * self.schedule(self.step_count)
        return self.optimizer.lr
