"""Runtime numeric sanitizer: NaN/Inf/clamp/underflow traps with provenance.

Numeric faults in a quantized network usually surface far from their
origin — a NaN born in one layer's backward pass trips an assertion three
modules later, and an overflowing activation quantizer silently clamps a
quarter of a tensor to ``value_max`` and just degrades BLEU.  This module
instruments the autodiff core (op outputs, accumulated gradients) and the
quantize/dequantize boundary (``repro.nn.functional.fake_quantize``) so
the *first* bad value is reported with op-level provenance: the layer
name, the op that produced it, and input statistics.

Checks
------
* ``forward-nan`` / ``forward-overflow`` — an op output contains NaN (or
  a fresh Inf) its inputs did not;
* ``backward-nan`` / ``backward-overflow`` — an accumulated gradient went
  non-finite (checked just before it propagates further, and on leaf
  gradients after ``backward()`` finishes);
* ``quantize-nan`` — a quantizer manufactured NaN from finite input;
* ``clamp-storm`` — more than ``clamp_storm`` of a tensor's elements were
  clamped to the format's extreme codepoint (saturated ``value_max``);
* ``underflow-flood`` — more than ``underflow_flood`` of the *nonzero*
  input elements quantized to exactly zero;
* ``param-nan`` / ``param-overflow`` / ``param-range`` — a *stored
  parameter* is NaN / Inf / outside its expected magnitude envelope
  (:func:`scan_parameters`).  The forward hooks deliberately stay quiet
  when an op's inputs are already bad (only the originating op reports),
  so faults injected directly into weights — the bit-flip model of
  :mod:`repro.resilience` — need this explicit scan.

Usage
-----
Opt in with the context manager (findings are collected on the report
object by default)::

    from repro import nn
    with nn.Sanitizer(model) as report:
        loss = step(model)
        loss.backward()
    for f in report.findings:
        print(f.render())

or process-wide via the environment: ``REPRO_SANITIZE=1`` activates the
sanitizer at import time with ``action="raise"`` (the first fault raises
:class:`NumericFault`); set ``REPRO_SANITIZE_ACTION=collect`` to log into
:func:`global_report` instead.  When no sanitizer is active the hooks are
a single ``is None`` check per op — effectively free.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "NumericFinding", "NumericFault", "SanitizeReport", "Sanitizer",
    "is_active", "global_report", "current_state",
    "on_op", "on_grad", "on_quantize", "scan_parameters",
]


@dataclasses.dataclass(frozen=True)
class NumericFinding:
    """One detected numeric fault, with provenance."""

    kind: str                  # forward-nan, backward-nan, clamp-storm, ...
    op: str                    # producing op, e.g. "matmul", "fake_quantize"
    layer: str                 # innermost module, e.g. "encoder.0.linear1"
    message: str
    stats: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def render(self) -> str:
        return f"[{self.kind}] layer={self.layer} op={self.op}: {self.message}"


class NumericFault(FloatingPointError):
    """Raised in ``action="raise"`` mode on the first detected fault."""

    def __init__(self, finding: NumericFinding) -> None:
        super().__init__(finding.render())
        self.finding = finding


@dataclasses.dataclass
class SanitizeReport:
    """Findings collected while a :class:`Sanitizer` was active."""

    findings: List[NumericFinding] = dataclasses.field(default_factory=list)
    ops_checked: int = 0
    params_scanned: int = 0
    truncated: bool = False

    def by_kind(self, kind: str) -> List[NumericFinding]:
        return [f for f in self.findings if f.kind == kind]

    def render(self) -> str:
        if not self.findings:
            return f"sanitizer: clean ({self.ops_checked} ops checked)"
        lines = [f.render() for f in self.findings]
        if self.truncated:
            lines.append("... (further findings dropped)")
        lines.append(f"sanitizer: {len(self.findings)} finding(s) in "
                     f"{self.ops_checked} ops")
        return "\n".join(lines)


class _State:
    """Live sanitizer configuration + collection state."""

    def __init__(self, action: str, clamp_storm: float,
                 underflow_flood: float, ignore_ops: Tuple[str, ...],
                 max_findings: int) -> None:
        self.action = action
        self.clamp_storm = clamp_storm
        self.underflow_flood = underflow_flood
        self.ignore_ops = frozenset(ignore_ops)
        self.max_findings = max_findings
        self.report = SanitizeReport()
        self.names: Dict[int, str] = {}
        self.module_stack: List[str] = []

    # ----------------------------------------------------------- provenance
    def register_model(self, model: Any) -> None:
        for name, module in model.named_modules():
            self.names[id(module)] = name or type(module).__name__

    def push_module(self, module: Any) -> None:
        self.module_stack.append(
            self.names.get(id(module)) or type(module).__name__)

    def pop_module(self) -> None:
        self.module_stack.pop()

    def current_layer(self) -> str:
        return self.module_stack[-1] if self.module_stack else "<no module>"

    # ------------------------------------------------------------ reporting
    def emit(self, kind: str, op: str, layer: str, message: str,
             stats: Dict[str, Any]) -> None:
        finding = NumericFinding(kind=kind, op=op, layer=layer,
                                 message=message, stats=stats)
        if self.action == "raise":
            raise NumericFault(finding)
        if len(self.report.findings) < self.max_findings:
            self.report.findings.append(finding)
        else:
            self.report.truncated = True


#: Sanitizer activation is *thread-local*: a :class:`Sanitizer` context
#: entered on one thread (say, a serving worker probing a batch) must not
#: leak into concurrent workers' forwards.  ``_TLS.state`` holds each
#: thread's active state; ``_GLOBAL_STATE`` is the process-wide fallback
#: installed by the ``REPRO_SANITIZE`` env knob.  ``_ACTIVE`` counts live
#: states across all threads so the per-op guard in the hot path stays a
#: single global load + truthiness test when nothing is active.
_TLS = threading.local()
_GLOBAL_STATE: Optional[_State] = None
_ACTIVE = 0
_ACTIVE_LOCK = threading.Lock()


def current_state() -> Optional[_State]:
    """This thread's active sanitizer state (env fallback), or None."""
    return getattr(_TLS, "state", None) or _GLOBAL_STATE


def _retain_state() -> None:
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE += 1


def _release_state() -> None:
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE -= 1


def is_active() -> bool:
    """Whether a sanitizer (context manager or env knob) is live *for
    the calling thread*."""
    return current_state() is not None


def global_report() -> Optional[SanitizeReport]:
    """The calling thread's active report (e.g. under ``REPRO_SANITIZE=1``)."""
    state = current_state()
    return state.report if state is not None else None


class Sanitizer:
    """Context manager activating the numeric sanitizer.

    Parameters
    ----------
    model:
        Optional root :class:`~repro.nn.module.Module`; when given,
        findings carry qualified layer names (``encoder.0.linear1``)
        instead of bare class names.
    action:
        ``"collect"`` (default) appends findings to the yielded report;
        ``"raise"`` raises :class:`NumericFault` on the first fault.
    clamp_storm:
        Fraction of a quantized tensor's elements clamped to the extreme
        codepoint above which a ``clamp-storm`` finding fires.
    underflow_flood:
        Fraction of *nonzero* inputs quantizing to exactly zero above
        which an ``underflow-flood`` finding fires.
    ignore_ops:
        Op names exempt from the fresh-Inf forward check.  The default
        exempts ``masked_fill``, which introduces -inf by design
        (attention masking) — softmax consumes it finitely.
    """

    def __init__(self, model: Any = None, action: str = "collect",
                 clamp_storm: float = 0.25, underflow_flood: float = 0.5,
                 ignore_ops: Tuple[str, ...] = ("masked_fill",),
                 max_findings: int = 100) -> None:
        if action not in ("collect", "raise"):
            raise ValueError(f"unknown action {action!r}")
        if not 0.0 < clamp_storm <= 1.0 or not 0.0 < underflow_flood <= 1.0:
            raise ValueError("clamp_storm/underflow_flood must be in (0, 1]")
        self._state = _State(action, clamp_storm, underflow_flood,
                             tuple(ignore_ops), max_findings)
        if model is not None:
            self._state.register_model(model)
        self._previous: Optional[_State] = None

    @property
    def report(self) -> SanitizeReport:
        return self._state.report

    def register_model(self, model: Any) -> None:
        """Add layer names for provenance after construction."""
        self._state.register_model(model)

    def __enter__(self) -> SanitizeReport:
        self._previous = getattr(_TLS, "state", None)
        _TLS.state = self._state
        _retain_state()
        return self._state.report

    def __exit__(self, *exc: Any) -> None:
        _TLS.state = self._previous
        _release_state()


# --------------------------------------------------------------- inspection
def _extremes_finite(a: np.ndarray) -> bool:
    """Cheap two-reduction finiteness screen (NaN/Inf both poison min+max)."""
    if a.size == 0:
        return True
    with np.errstate(all="ignore"):
        s = float(a.min()) + float(a.max())
    return bool(np.isfinite(s))


def _stats(a: np.ndarray) -> Dict[str, Any]:
    finite = a[np.isfinite(a)]
    return {
        "shape": tuple(a.shape),
        "nan": int(np.isnan(a).sum()),
        "inf": int(np.isinf(a).sum()),
        "finite_min": float(finite.min()) if finite.size else None,
        "finite_max": float(finite.max()) if finite.size else None,
    }


def _op_name(backward: Any) -> str:
    """Derive the op name from its backward closure's qualname.

    Every autodiff op builds a ``backward`` closure inside the op
    function, so the enclosing function name *is* the op name
    (``Tensor.__mul__`` -> ``mul``, ``conv2d`` -> ``conv2d``).
    """
    qualname = getattr(backward, "__qualname__", "") or "<op>"
    enclosing = qualname.split(".<locals>", 1)[0].rsplit(".", 1)[-1]
    return enclosing.strip("_") or "<op>"


# --------------------------------------------------------------------- hooks
# Called from repro.nn.tensor / repro.nn.functional / Module.__call__.
# Each caller guards on the `_ACTIVE` count, so the common (inactive)
# cost is one global load + truthiness test per op; the hooks then
# resolve the *calling thread's* state (possibly None when a sanitizer
# is live only on some other thread) and bail if there is none.

def on_op(out: Any, data: np.ndarray, parents: Tuple[Any, ...],
          backward: Any) -> None:
    """Forward check: did this op manufacture NaN/Inf its inputs lacked?"""
    state = current_state()
    if state is None:
        return
    out._san_layer = state.current_layer()
    state.report.ops_checked += 1
    if _extremes_finite(data):
        return
    if any(not _extremes_finite(p.data) for p in parents):
        return  # propagation: the originating op already reported
    op = _op_name(backward)
    stats = _stats(data)
    if stats["nan"]:
        state.emit("forward-nan", op, state.current_layer(),
                   f"op produced {stats['nan']} NaN value(s) from finite "
                   "inputs", stats)
    elif op not in state.ignore_ops:
        state.emit("forward-overflow", op, state.current_layer(),
                   f"op produced {stats['inf']} Inf value(s) from finite "
                   "inputs (overflow)", stats)


def on_grad(node: Any) -> None:
    """Backward check: is this node's accumulated gradient still finite?

    Runs right before the node's backward closure propagates the gradient
    to its parents, i.e. at the earliest point the fault is observable.
    """
    state = current_state()
    if state is None:
        return
    grad = node.grad
    state.report.ops_checked += 1
    if _extremes_finite(grad):
        return
    op = _op_name(node._backward) if node._backward is not None else "leaf"
    layer = getattr(node, "_san_layer", None) or "<no module>"
    stats = _stats(grad)
    kind = "backward-nan" if stats["nan"] else "backward-overflow"
    noun = "NaN" if stats["nan"] else "Inf"
    state.emit(kind, op, layer,
               f"gradient flowing into op output carries "
               f"{stats['nan'] or stats['inf']} {noun} value(s)", stats)


def on_quantize(inp: np.ndarray, out: np.ndarray) -> None:
    """Quantize-boundary check: NaN manufacture, clamp storms, underflow."""
    state = current_state()
    if state is None:
        return
    state.report.ops_checked += 1
    layer = state.current_layer()
    if not _extremes_finite(out):
        if _extremes_finite(inp):
            stats = _stats(out)
            state.emit("quantize-nan", "fake_quantize", layer,
                       "quantizer produced non-finite output from finite "
                       "input", stats)
        return
    if inp.size == 0:
        return
    with np.errstate(invalid="ignore"):
        abs_in = np.abs(inp)
        abs_out = np.abs(out)
        top = abs_out.max()
        if top > 0.0:
            clamped = float(((abs_out >= top) & (abs_in > top)).mean())
            if clamped > state.clamp_storm:
                state.emit(
                    "clamp-storm", "fake_quantize", layer,
                    f"{clamped:.1%} of elements clamped to the extreme "
                    f"codepoint {float(top):g} (input max "
                    f"{float(abs_in.max()):g}); the format's value_max is "
                    "too small for this tensor", {
                        "clamped_fraction": clamped,
                        "codepoint_max": float(top),
                        "input_max": float(abs_in.max()),
                    })
        nonzero = int((inp != 0.0).sum())
        if nonzero:
            flooded = float(((inp != 0.0) & (out == 0.0)).sum() / nonzero)
            if flooded > state.underflow_flood:
                state.emit(
                    "underflow-flood", "fake_quantize", layer,
                    f"{flooded:.1%} of nonzero inputs quantized to zero; "
                    "the format's value_min is too large for this tensor", {
                        "flooded_fraction": flooded,
                        "nonzero_inputs": nonzero,
                    })


# ------------------------------------------------------------- parameter scan
def scan_parameters(model: Any, bounds: Optional[Dict[str, float]] = None,
                    range_slack: float = 2.0) -> List[NumericFinding]:
    """Sweep a model's stored parameters for corrupted values.

    The forward hooks only report the op that *manufactures* a bad value
    — ops whose inputs are already non-finite are treated as propagation
    and stay silent.  A fault injected straight into a weight tensor (the
    :mod:`repro.resilience` bit-flip model) therefore never trips them;
    this scan is the complementary detector a hardware range/finiteness
    checker on the weight SRAM would implement.

    Checks per parameter tensor:

    * ``param-nan`` — any NaN element;
    * ``param-overflow`` — any Inf element;
    * ``param-range`` — all elements finite but the max magnitude
      exceeds ``range_slack`` times the expected bound from ``bounds``
      (a dict ``{parameter name -> expected max |value|}``, typically
      recorded from the clean quantized weights).

    Findings are returned; when a :class:`Sanitizer` is active they are
    also recorded on its report (or raised, in ``action="raise"`` mode),
    and ``params_scanned`` is incremented per tensor.
    """
    state = current_state()
    findings: List[NumericFinding] = []
    for name, param in model.named_parameters():
        data = np.asarray(param.data)
        if state is not None:
            state.report.params_scanned += 1
        kind = message = None
        stats: Dict[str, Any] = {}
        if not _extremes_finite(data):
            stats = _stats(data)
            if stats["nan"]:
                kind = "param-nan"
                message = f"parameter carries {stats['nan']} NaN value(s)"
            else:
                kind = "param-overflow"
                message = f"parameter carries {stats['inf']} Inf value(s)"
        elif bounds is not None and name in bounds and data.size:
            limit = float(bounds[name]) * float(range_slack)
            top = float(np.abs(data).max())
            if limit > 0.0 and top > limit:
                kind = "param-range"
                message = (f"parameter magnitude {top:g} exceeds "
                           f"{range_slack:g}x the expected bound "
                           f"{float(bounds[name]):g}")
                stats = {"max_abs": top, "bound": float(bounds[name]),
                         "range_slack": float(range_slack)}
        if kind is None:
            continue
        findings.append(NumericFinding(kind=kind, op="scan_parameters",
                                       layer=name, message=message,
                                       stats=stats))
        if state is not None:
            state.emit(kind, "scan_parameters", name, message, stats)
    return findings


# ------------------------------------------------------------------ env knob
def _activate_from_env() -> None:
    """Honour ``REPRO_SANITIZE=1`` at import time (process-wide opt-in).

    The env-installed state is *global* (visible from every thread) —
    a process-wide tripwire, unlike the thread-scoped context manager.
    A :class:`Sanitizer` entered on a thread shadows it there.
    """
    global _GLOBAL_STATE
    if os.environ.get("REPRO_SANITIZE", "") not in ("1", "true", "yes"):
        return
    action = os.environ.get("REPRO_SANITIZE_ACTION", "raise")
    if action not in ("collect", "raise"):
        action = "raise"
    _GLOBAL_STATE = _State(action=action, clamp_storm=0.25,
                           underflow_flood=0.5,
                           ignore_ops=("masked_fill",), max_findings=100)
    _retain_state()


_activate_from_env()
