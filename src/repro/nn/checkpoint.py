"""Quantized model checkpoints: packed bitstreams + JSON manifest.

``save_quantized`` writes a directory holding, for every quantizable
weight, its real ``n``-bit bitstream (MSB-first packed words) plus the
adaptive parameters needed to decode it (``exp_bias`` / scale / shared
exponent), with all remaining parameters (biases, norm vectors) stored
in FP32.  ``load_quantized`` reconstructs the model exactly — the
dequantized weights are bit-identical to what ``quantize_weights_inplace``
produced, demonstrating that the claimed ``n``-bit storage really holds
the model.

Only formats with a bit-exact integer codec are supported for packing:
AdaptivFloat (sign/exp/mantissa words), uniform (integer levels) and BFP
(integer mantissas).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Tuple, Type

import numpy as np

from ..formats import AdaptivFloat, BlockFloat, Uniform, make_quantizer
from ..formats.bitpack import pack_words, packed_nbytes, unpack_words
from .module import Module
from .quantize import DEFAULT_QUANTIZED_LAYERS, QuantSpec, quantize_weights_inplace

__all__ = ["save_quantized", "load_quantized", "quantized_size_bytes"]

_PACKABLE = ("adaptivfloat", "uniform", "bfp")


def _encode_words(spec: QuantSpec, values: np.ndarray,
                  params: Dict[str, Any]) -> np.ndarray:
    quantizer = spec.build()
    if isinstance(quantizer, AdaptivFloat):
        return quantizer.encode(values.astype(np.float64),
                                int(params["exp_bias"]))
    if isinstance(quantizer, Uniform):
        levels = np.rint(values.astype(np.float64)
                         / float(params["scale"])).astype(np.int64)
        return (levels & (2 ** spec.bits - 1)).astype(np.uint32)
    if isinstance(quantizer, BlockFloat):
        quantum = 2.0 ** (int(params["shared_exp"]) - (spec.bits - 2))
        levels = np.rint(values.astype(np.float64) / quantum).astype(np.int64)
        return (levels & (2 ** spec.bits - 1)).astype(np.uint32)
    raise ValueError(f"format {spec.fmt!r} has no bit-exact packer")


def _decode_words(spec: QuantSpec, words: np.ndarray,
                  params: Dict[str, Any]) -> np.ndarray:
    quantizer = spec.build()
    if isinstance(quantizer, AdaptivFloat):
        return quantizer.decode(words, int(params["exp_bias"]))
    # sign-extend two's-complement levels
    levels = words.astype(np.int64)
    sign_bit = 1 << (spec.bits - 1)
    levels = (levels ^ sign_bit) - sign_bit
    if isinstance(quantizer, Uniform):
        return levels * float(params["scale"])
    quantum = 2.0 ** (int(params["shared_exp"]) - (spec.bits - 2))
    return levels * quantum


def save_quantized(model: Module, spec: QuantSpec,
                   directory, layer_types: Tuple[Type[Module], ...]
                   = DEFAULT_QUANTIZED_LAYERS) -> pathlib.Path:
    """PTQ-quantize ``model`` in place and persist it bit-packed.

    Returns the checkpoint directory (manifest.json + weights.bin +
    fp32.npz).
    """
    if spec.fmt not in _PACKABLE:
        raise ValueError(f"format {spec.fmt!r} not packable; "
                         f"choose one of {_PACKABLE}")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    report = quantize_weights_inplace(model, spec, layer_types)
    params_by_name = dict(model.named_parameters())

    manifest: Dict[str, Any] = {
        "format": spec.fmt, "bits": spec.bits,
        "overrides": dict(spec.overrides), "tensors": {},
    }
    blob = bytearray()
    fp32: Dict[str, np.ndarray] = {}
    for name, param in params_by_name.items():
        if name in report:
            words = _encode_words(spec, param.data, report[name])
            stream = pack_words(words, spec.bits)
            manifest["tensors"][name] = {
                "offset": len(blob), "count": int(param.data.size),
                "shape": list(param.data.shape),
                "params": {k: int(v) if isinstance(v, (int, np.integer))
                           else float(v) for k, v in report[name].items()},
            }
            blob.extend(stream)
        else:
            fp32[name] = param.data
    for name, value in model.named_buffers():
        fp32[f"{name}@buffer"] = np.asarray(value)

    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    (directory / "weights.bin").write_bytes(bytes(blob))
    np.savez(directory / "fp32.npz", **fp32)
    return directory


def load_quantized(model: Module, directory) -> Module:
    """Load a checkpoint written by :func:`save_quantized` into ``model``."""
    directory = pathlib.Path(directory)
    manifest = json.loads((directory / "manifest.json").read_text())
    blob = (directory / "weights.bin").read_bytes()
    spec = QuantSpec(manifest["format"], int(manifest["bits"]),
                     dict(manifest["overrides"]))
    own = dict(model.named_parameters())
    for name, meta in manifest["tensors"].items():
        if name not in own:
            raise KeyError(f"checkpoint tensor {name!r} not in model")
        count = int(meta["count"])
        offset = int(meta["offset"])
        nbytes = packed_nbytes(count, spec.bits)
        words = unpack_words(blob[offset:offset + nbytes], spec.bits, count)
        values = _decode_words(spec, words, meta["params"])
        own[name].data = values.reshape(meta["shape"]).astype(np.float32)
        own[name].bump_version()

    fp32 = np.load(directory / "fp32.npz")
    buffer_owners = {}
    for prefix, module in model.named_modules():
        for bname in module._buffers:
            key = f"{prefix}.{bname}" if prefix else bname
            buffer_owners[f"{key}@buffer"] = (module, bname)
    for key in fp32.files:
        if key.endswith("@buffer"):
            module, bname = buffer_owners[key]
            setattr(module, bname, fp32[key].copy())
        else:
            own[key].data = fp32[key].copy()
            own[key].bump_version()
    return model


def quantized_size_bytes(directory) -> Dict[str, int]:
    """On-disk footprint of a quantized checkpoint, by component."""
    directory = pathlib.Path(directory)
    return {
        "packed_weights": (directory / "weights.bin").stat().st_size,
        "fp32_residual": (directory / "fp32.npz").stat().st_size,
        "manifest": (directory / "manifest.json").stat().st_size,
    }
