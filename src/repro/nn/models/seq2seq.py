"""Attention-based LSTM sequence-to-sequence model (Chorowski et al. [4]).

Stands in for the paper's LibriSpeech speech-to-text network (Table 1:
"Attention, LSTM, FC layers", 4-layer LSTM encoder + 1-layer LSTM
decoder).  The encoder consumes continuous acoustic-like feature frames;
the decoder is an LSTM cell with additive attention over encoder states
and an output generator.  Evaluated with word error rate (WER).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from .. import functional as F
from ..decoding import pad_hypotheses
from ..layers import (AdditiveAttention, Dropout, Embedding, LSTM, LSTMCell,
                      Linear)
from ..module import Module
from ..tensor import Tensor, no_grad

__all__ = ["Seq2Seq", "Seq2SeqConfig"]


@dataclasses.dataclass
class Seq2SeqConfig:
    """Hyper-parameters for the scaled-down attention seq2seq model."""

    input_dim: int = 16          # acoustic feature dimension per frame
    vocab: int = 32
    hidden: int = 64
    encoder_layers: int = 2
    attn_size: int = 64
    dropout: float = 0.1
    max_len: int = 24
    pad_id: int = 0
    bos_id: int = 1
    eos_id: int = 2
    #: Moderate heavy-tailed init gains: the paper's seq2seq weight range
    #: ([-2.21, 2.39]) sits between the CNN and Transformer regimes.
    #: ``weight_gain_spread`` leptokurtifies every projection mildly.
    embedding_gain_spread: float = 6.0
    weight_gain_spread: float = 3.0


class Seq2Seq(Module):
    """LSTM encoder / attention LSTM decoder with greedy decoding."""

    def __init__(self, config: Optional[Seq2SeqConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.config = cfg = config or Seq2SeqConfig()
        self.input_proj = Linear(cfg.input_dim, cfg.hidden, rng=rng)
        self.encoder = LSTM(cfg.hidden, cfg.hidden, cfg.encoder_layers, rng=rng)
        self.embed = Embedding(cfg.vocab, cfg.hidden, rng=rng)
        self.decoder_cell = LSTMCell(2 * cfg.hidden, cfg.hidden, rng=rng)
        self.attention = AdditiveAttention(cfg.hidden, cfg.hidden,
                                           cfg.attn_size, rng=rng)
        self.generator = Linear(2 * cfg.hidden, cfg.vocab, rng=rng)
        self.dropout = Dropout(cfg.dropout, rng=rng)
        from .. import init as _init
        # init-time rescale, before any autodiff graph exists
        for param in (self.embed.weight, self.generator.weight):
            param.data = _init.apply_row_gains(  # reprocheck: disable=AG001
                param.data, cfg.embedding_gain_spread, rng)
        for name, module in self.named_modules():
            if isinstance(module, (Linear, LSTMCell)) \
                    and module is not self.generator:
                for pname, param in module._parameters.items():
                    if pname.startswith("weight"):
                        param.data = _init.apply_row_gains(  # reprocheck: disable=AG001
                            param.data, cfg.weight_gain_spread, rng)

    # ------------------------------------------------------------- encoder
    def encode(self, frames: np.ndarray) -> Tensor:
        """``frames``: (B, T, input_dim) float array -> (B, T, hidden)."""
        x = F.tanh(self.input_proj(Tensor(frames)))
        out, _ = self.encoder(self.dropout(x))
        return out

    # ------------------------------------------------------------- decoder
    def _decode_step(self, token_emb: Tensor, state, memory: Tensor,
                     keys_proj: Optional[Tensor] = None):
        h_prev, _ = state
        context = self.attention(h_prev, memory, keys_proj=keys_proj)
        cell_in = F.cat([token_emb, context], axis=-1)
        h, c = self.decoder_cell(cell_in, state)
        logits = self.generator(F.cat([h, context], axis=-1))
        return logits, (h, c)

    def forward(self, frames: np.ndarray, tgt_ids: np.ndarray) -> Tensor:
        """Teacher-forced logits: (B, T_tgt, vocab).

        ``tgt_ids`` is the *shifted-in* target (BOS-prefixed).
        """
        memory = self.encode(frames)
        batch, tgt_len = tgt_ids.shape
        state = self.decoder_cell.initial_state(batch)
        emb = self.embed(tgt_ids)
        steps = []
        for t in range(tgt_len):
            logits, state = self._decode_step(emb[:, t, :], state, memory)
            steps.append(logits.reshape(batch, 1, self.config.vocab))
        return F.cat(steps, axis=1)

    def beam_decode(self, frames: np.ndarray, beam_size: int = 4,
                    max_len: Optional[int] = None,
                    length_penalty: float = 0.6,
                    use_cache: bool = True) -> np.ndarray:
        """Length-normalized beam search over the decoder LSTM.

        ``use_cache=True`` (the default) advances all live hypotheses in
        one stacked recurrent step with a one-shot attention-key
        projection; ``use_cache=False`` is the naive one-candidate-at-a-
        time reference.  Both select the same candidates.
        """
        if beam_size < 1:
            raise ValueError(f"beam_size must be >= 1, got {beam_size}")
        cfg = self.config
        max_len = max_len or cfg.max_len
        step = self._beam_one_cached if use_cache else self._beam_one
        results = []
        with no_grad():
            for i in range(frames.shape[0]):
                results.append(step(frames[i:i + 1], beam_size,
                                    max_len, length_penalty))
        return pad_hypotheses(results, cfg.pad_id)

    def _beam_one(self, frames: np.ndarray, beam_size: int, max_len: int,
                  alpha: float) -> list:
        cfg = self.config
        memory = self.encode(frames)
        init = self.decoder_cell.initial_state(1)
        beams = [([], 0.0, init, False)]  # (tokens, logp, state, finished)
        for step in range(max_len):
            candidates = []
            for tokens, logp, state, finished in beams:
                if finished:
                    candidates.append((tokens, logp, state, True))
                    continue
                prev = np.asarray([tokens[-1] if tokens else cfg.bos_id],
                                  dtype=np.int64)
                emb = self.embed(prev)
                logits, new_state = self._decode_step(emb, state, memory)
                raw = logits.data[0]
                shifted = raw - raw.max()
                logprobs = shifted - np.log(np.exp(shifted).sum())
                top = np.argsort(-logprobs)[:beam_size]
                for token in top:
                    candidates.append((tokens + [int(token)],
                                       logp + float(logprobs[token]),
                                       new_state, token == cfg.eos_id))

            def score(entry):
                tokens, logp, _, __ = entry
                norm = ((5.0 + max(len(tokens), 1)) / 6.0) ** alpha
                return logp / norm

            candidates.sort(key=score, reverse=True)
            beams = candidates[:beam_size]
            if all(f for _, __, ___, f in beams):
                break
        best = beams[0][0]
        if cfg.eos_id in best:
            best = best[:best.index(cfg.eos_id)]
        return best

    def _beam_one_cached(self, frames: np.ndarray, beam_size: int,
                         max_len: int, alpha: float) -> list:
        """Stacked beam step: all live hypotheses in one recurrent forward.

        The per-beam LSTM state rows ride in one ``(k, hidden)`` stack
        that is gathered to the surviving candidates' parent rows after
        every selection; the attention key projection is computed once
        per source.  Candidate construction, scoring, and (stable)
        selection order replicate :meth:`_beam_one` exactly.
        """
        cfg = self.config
        memory = self.encode(frames)                       # (1, T, hidden)
        keys_proj = self.attention.project_keys(memory)    # (1, T, attn)
        h0, c0 = self.decoder_cell.initial_state(1)
        h, c = h0.data, c0.data                            # (k, hidden) stacks
        beams = [([], 0.0, 0, False)]  # (tokens, logp, state row, finished)
        for step in range(max_len):
            live = [i for i, (_, __, ___, done) in enumerate(beams)
                    if not done]
            k = len(live)
            prev = np.asarray([beams[i][0][-1] if beams[i][0] else cfg.bos_id
                               for i in live], dtype=np.int64)
            rows = np.asarray([beams[i][2] for i in live], dtype=np.int64)
            state = (Tensor(h[rows]), Tensor(c[rows]))
            mem_k = Tensor(np.repeat(memory.data, k, axis=0))
            kp_k = Tensor(np.repeat(keys_proj.data, k, axis=0))
            logits, new_state = self._decode_step(self.embed(prev), state,
                                                  mem_k, keys_proj=kp_k)
            logits_k = logits.data
            row_of = {beam_idx: r for r, beam_idx in enumerate(live)}
            candidates = []  # (tokens, logp, parent state row, finished)
            for i, (tokens, logp, _, finished) in enumerate(beams):
                if finished:
                    candidates.append((tokens, logp, -1, True))
                    continue
                raw = logits_k[row_of[i]]
                shifted = raw - raw.max()
                logprobs = shifted - np.log(np.exp(shifted).sum())
                top = np.argsort(-logprobs)[:beam_size]
                for token in top:
                    candidates.append((tokens + [int(token)],
                                       logp + float(logprobs[token]),
                                       row_of[i], token == cfg.eos_id))

            def score(entry):
                tokens, logp, _, __ = entry
                norm = ((5.0 + max(len(tokens), 1)) / 6.0) ** alpha
                return logp / norm

            candidates.sort(key=score, reverse=True)
            beams, gather = [], []
            for tokens, logp, row, finished in candidates[:beam_size]:
                if finished:
                    beams.append((tokens, logp, -1, True))
                else:
                    beams.append((tokens, logp, len(gather), False))
                    gather.append(row)
            if all(f for _, __, ___, f in beams):
                break
            idx = np.asarray(gather, dtype=np.int64)
            h, c = new_state[0].data[idx], new_state[1].data[idx]
        best = beams[0][0]
        if cfg.eos_id in best:
            best = best[:best.index(cfg.eos_id)]
        return best

    def greedy_decode(self, frames: np.ndarray,
                      max_len: Optional[int] = None,
                      use_cache: bool = True) -> np.ndarray:
        """Greedy transcription; (B, <=max_len) ids, padded after EOS.

        ``use_cache=True`` (the default) projects the attention keys
        once per batch instead of once per step; the recurrent state is
        carried either way.
        """
        cfg = self.config
        max_len = max_len or cfg.max_len
        batch = frames.shape[0]
        with no_grad():
            memory = self.encode(frames)
            keys_proj = self.attention.project_keys(memory) \
                if use_cache else None
            state = self.decoder_cell.initial_state(batch)
            token = np.full(batch, cfg.bos_id, dtype=np.int64)
            finished = np.zeros(batch, dtype=bool)
            outputs = []
            for _ in range(max_len):
                emb = self.embed(token)
                logits, state = self._decode_step(emb, state, memory,
                                                  keys_proj=keys_proj)
                token = logits.data.argmax(axis=-1)
                token = np.where(finished, cfg.pad_id, token)
                outputs.append(token)
                finished |= token == cfg.eos_id
                if finished.all():
                    break
        return np.stack(outputs, axis=1)
