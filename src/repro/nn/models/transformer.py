"""Encoder-decoder Transformer (Vaswani et al. [28], scaled down).

The paper evaluates a WMT'17 En-De Transformer (93M parameters).  Our
substitute keeps the exact architecture — token embeddings, sinusoidal
positions, multi-head self/cross attention, LayerNorm (the source of the
wide weight distributions in paper Fig. 1), position-wise FFN, weight-
tied generator — at a width trainable on CPU for a synthetic
translation task (DESIGN.md §2).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from .. import functional as F
from ..decoding import DecoderKVCache, LayerKVCache, pad_hypotheses
from ..layers import Dropout, Embedding, LayerNorm, Linear, MultiHeadAttention
from ..module import Module, ModuleList
from ..tensor import Tensor, no_grad

__all__ = ["Transformer", "TransformerConfig", "causal_mask", "padding_mask"]


def causal_mask(size: int) -> np.ndarray:
    """(1, 1, T, T) boolean mask blocking attention to future positions."""
    return np.triu(np.ones((size, size), dtype=bool), k=1)[None, None]


def padding_mask(ids: np.ndarray, pad_id: int) -> np.ndarray:
    """(B, 1, 1, T) boolean mask blocking attention to padding tokens."""
    return (np.asarray(ids) == pad_id)[:, None, None, :]


@dataclasses.dataclass
class TransformerConfig:
    """Hyper-parameters for the scaled-down Transformer."""

    src_vocab: int = 64
    tgt_vocab: int = 64
    d_model: int = 64
    num_heads: int = 4
    num_encoder_layers: int = 2
    num_decoder_layers: int = 2
    d_ff: int = 128
    dropout: float = 0.1
    max_len: int = 64
    pad_id: int = 0
    bos_id: int = 1
    eos_id: int = 2
    #: Heavy-tailed per-row init gains emulating the wide weight
    #: distributions of large pretrained NLP models (DESIGN.md §2);
    #: set to 1.0 to disable.  ``weight_gain_spread`` applies mildly to
    #: every projection (converged networks are leptokurtic in every
    #: layer); the embedding/generator spreads model the extreme tails.
    embedding_gain_spread: float = 8.0
    generator_gain_spread: float = 4.0
    weight_gain_spread: float = 3.0


class _PositionalEncoding(Module):
    """Fixed sinusoidal positional encoding."""

    def __init__(self, d_model: int, max_len: int) -> None:
        super().__init__()
        position = np.arange(max_len, dtype=np.float64)[:, None]
        div = np.exp(np.arange(0, d_model, 2, dtype=np.float64)
                     * (-np.log(10000.0) / d_model))
        table = np.zeros((max_len, d_model), dtype=np.float32)
        table[:, 0::2] = np.sin(position * div)
        table[:, 1::2] = np.cos(position * div)
        self.table = table

    def forward(self, x: Tensor) -> Tensor:
        seq = x.shape[1]
        return x + Tensor(self.table[None, :seq])


class _FeedForward(Module):
    def __init__(self, d_model: int, d_ff: int, dropout: float,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.fc1 = Linear(d_model, d_ff, rng=rng)
        self.fc2 = Linear(d_ff, d_model, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.dropout(F.relu(self.fc1(x))))


class _EncoderLayer(Module):
    def __init__(self, cfg: TransformerConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.self_attn = MultiHeadAttention(cfg.d_model, cfg.num_heads, rng=rng)
        self.ffn = _FeedForward(cfg.d_model, cfg.d_ff, cfg.dropout, rng=rng)
        self.norm1 = LayerNorm(cfg.d_model)
        self.norm2 = LayerNorm(cfg.d_model)
        self.dropout = Dropout(cfg.dropout, rng=rng)

    def forward(self, x: Tensor, src_mask: Optional[np.ndarray]) -> Tensor:
        x = self.norm1(x + self.dropout(self.self_attn(x, x, x, mask=src_mask)))
        return self.norm2(x + self.dropout(self.ffn(x)))


class _DecoderLayer(Module):
    def __init__(self, cfg: TransformerConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.self_attn = MultiHeadAttention(cfg.d_model, cfg.num_heads, rng=rng)
        self.cross_attn = MultiHeadAttention(cfg.d_model, cfg.num_heads, rng=rng)
        self.ffn = _FeedForward(cfg.d_model, cfg.d_ff, cfg.dropout, rng=rng)
        self.norm1 = LayerNorm(cfg.d_model)
        self.norm2 = LayerNorm(cfg.d_model)
        self.norm3 = LayerNorm(cfg.d_model)
        self.dropout = Dropout(cfg.dropout, rng=rng)

    def forward(self, x: Tensor, memory: Tensor,
                tgt_mask: Optional[np.ndarray],
                memory_mask: Optional[np.ndarray],
                cache: Optional[LayerKVCache] = None) -> Tensor:
        self_cache = cache.self_attn if cache is not None else None
        cross_cache = cache.cross_attn if cache is not None else None
        x = self.norm1(x + self.dropout(
            self.self_attn(x, x, x, mask=tgt_mask, cache=self_cache)))
        x = self.norm2(x + self.dropout(
            self.cross_attn(x, memory, memory, mask=memory_mask,
                            cache=cross_cache)))
        return self.norm3(x + self.dropout(self.ffn(x)))


class Transformer(Module):
    """Sequence-to-sequence Transformer with greedy decoding."""

    def __init__(self, config: Optional[TransformerConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.config = cfg = config or TransformerConfig()
        self.src_embed = Embedding(cfg.src_vocab, cfg.d_model, rng=rng)
        self.tgt_embed = Embedding(cfg.tgt_vocab, cfg.d_model, rng=rng)
        self.pos = _PositionalEncoding(cfg.d_model, cfg.max_len)
        self.encoder = ModuleList(
            [_EncoderLayer(cfg, rng) for _ in range(cfg.num_encoder_layers)])
        self.decoder = ModuleList(
            [_DecoderLayer(cfg, rng) for _ in range(cfg.num_decoder_layers)])
        self.generator = Linear(cfg.d_model, cfg.tgt_vocab, rng=rng)
        self.embed_scale = float(np.sqrt(cfg.d_model))
        from .. import init as _init
        for param, spread in ((self.src_embed.weight, cfg.embedding_gain_spread),
                              (self.tgt_embed.weight, cfg.embedding_gain_spread),
                              (self.generator.weight, cfg.generator_gain_spread)):
            # init-time rescale, before any autodiff graph exists
            param.data = _init.apply_row_gains(param.data, spread, rng)  # reprocheck: disable=AG001
        for name, module in self.named_modules():
            if isinstance(module, Linear) and module is not self.generator:
                module.weight.data = _init.apply_row_gains(  # reprocheck: disable=AG001
                    module.weight.data, cfg.weight_gain_spread, rng)

    # ------------------------------------------------------------- encoding
    def encode(self, src_ids: np.ndarray) -> Tensor:
        src_mask = padding_mask(src_ids, self.config.pad_id)
        x = self.pos(self.src_embed(src_ids) * self.embed_scale)
        for layer in self.encoder:
            x = layer(x, src_mask)
        return x

    def decode(self, memory: Tensor, src_ids: np.ndarray,
               tgt_ids: np.ndarray) -> Tensor:
        cfg = self.config
        tgt_len = tgt_ids.shape[1]
        tgt_mask = causal_mask(tgt_len) | padding_mask(tgt_ids, cfg.pad_id)
        memory_mask = padding_mask(src_ids, cfg.pad_id)
        x = self.pos(self.tgt_embed(tgt_ids) * self.embed_scale)
        for layer in self.decoder:
            x = layer(x, memory, tgt_mask, memory_mask)
        return x

    def forward(self, src_ids: np.ndarray, tgt_ids: np.ndarray) -> Tensor:
        """Teacher-forced logits: (B, T_tgt, tgt_vocab)."""
        memory = self.encode(src_ids)
        return self.generator(self.decode(memory, src_ids, tgt_ids))

    # ------------------------------------------------------------- decoding
    def decode_step(self, memory: Tensor, src_ids: np.ndarray,
                    tokens: np.ndarray, cache: DecoderKVCache) -> Tensor:
        """One incremental decoder step over the *latest* token column.

        ``tokens`` is the full ``(B, T)`` prefix decoded so far (its last
        column is the new input); ``cache`` must already hold K/V for the
        first ``T - 1`` positions and is updated in place.  Returns the
        ``(B, 1, d_model)`` decoder output for the new position —
        bit-for-bit the last position of :meth:`decode` on the same
        prefix under a shape-stable matmul kernel (docs/inference.md).
        """
        cfg = self.config
        pos = tokens.shape[1] - 1
        if cache.length != pos:
            raise ValueError(f"cache covers {cache.length} positions, "
                             f"expected {pos} for a length-{pos + 1} prefix")
        # The last causal-mask row blocks nothing at or before the query,
        # so the per-step self-attention mask reduces to key padding.
        self_mask = padding_mask(tokens, cfg.pad_id)
        memory_mask = padding_mask(src_ids, cfg.pad_id)
        x = self.tgt_embed(tokens[:, -1:]) * self.embed_scale \
            + Tensor(self.pos.table[None, pos:pos + 1])
        for layer, layer_cache in zip(self.decoder, cache.layers):
            x = layer(x, memory, self_mask, memory_mask, cache=layer_cache)
        return x

    def beam_decode(self, src_ids: np.ndarray, beam_size: int = 4,
                    max_len: Optional[int] = None,
                    length_penalty: float = 0.6,
                    use_cache: bool = True) -> np.ndarray:
        """Length-normalized beam search (one sequence at a time).

        Scores follow GNMT: ``logp / ((5 + len) / 6) ** alpha``.  Returns
        (B, <=max_len) ids padded after EOS, like :meth:`greedy_decode`.

        ``use_cache=True`` (the default) advances all live hypotheses in
        one KV-cached stacked forward per step; ``use_cache=False`` is
        the naive reference that re-decodes every candidate's full
        prefix each step.  Both select the same candidates.
        """
        if beam_size < 1:
            raise ValueError(f"beam_size must be >= 1, got {beam_size}")
        cfg = self.config
        max_len = max_len or cfg.max_len
        step = self._beam_one_cached if use_cache else self._beam_one
        results = []
        with no_grad():
            for row in np.asarray(src_ids):
                results.append(step(row[None, :], beam_size,
                                    max_len, length_penalty))
        return pad_hypotheses(results, cfg.pad_id)

    def _beam_one(self, src: np.ndarray, beam_size: int, max_len: int,
                  alpha: float) -> list:
        cfg = self.config
        memory = self.encode(src)
        beams = [([cfg.bos_id], 0.0, False)]  # (tokens, logp, finished)
        for _ in range(max_len - 1):
            candidates = []
            for tokens, logp, finished in beams:
                if finished:
                    candidates.append((tokens, logp, True))
                    continue
                tgt = np.asarray(tokens, dtype=np.int64)[None, :]
                out = self.decode(memory, src, tgt)
                logits = self.generator(out[:, -1, :]).data[0]
                shifted = logits - logits.max()
                logprobs = shifted - np.log(np.exp(shifted).sum())
                top = np.argsort(-logprobs)[:beam_size]
                for token in top:
                    candidates.append((tokens + [int(token)],
                                       logp + float(logprobs[token]),
                                       token == cfg.eos_id))

            def score(entry):
                tokens, logp, _ = entry
                norm = ((5.0 + len(tokens)) / 6.0) ** alpha
                return logp / norm

            candidates.sort(key=score, reverse=True)
            beams = candidates[:beam_size]
            if all(finished for _, __, finished in beams):
                break
        best = beams[0][0][1:]  # drop BOS
        if cfg.eos_id in best:
            best = best[:best.index(cfg.eos_id)]
        return best

    def _beam_one_cached(self, src: np.ndarray, beam_size: int, max_len: int,
                         alpha: float) -> list:
        """KV-cached beam step: all live hypotheses in one stacked forward.

        Candidate construction, scoring, and (stable) selection order
        replicate :meth:`_beam_one` exactly; the cache is reordered to
        the surviving candidates' parent rows after every selection.
        """
        cfg = self.config
        memory = self.encode(src)
        cache = DecoderKVCache(len(self.decoder))
        beams = [([cfg.bos_id], 0.0, False)]  # (tokens, logp, finished)
        for _ in range(max_len - 1):
            live = [i for i, (_, __, done) in enumerate(beams) if not done]
            tokens_k = np.asarray([beams[i][0] for i in live], dtype=np.int64)
            out = self.decode_step(memory, src, tokens_k, cache)
            logits_k = self.generator(out[:, -1, :]).data
            row_of = {beam_idx: row for row, beam_idx in enumerate(live)}
            candidates = []  # (tokens, logp, finished, parent cache row)
            for i, (tokens, logp, finished) in enumerate(beams):
                if finished:
                    candidates.append((tokens, logp, True, -1))
                    continue
                logits = logits_k[row_of[i]]
                shifted = logits - logits.max()
                logprobs = shifted - np.log(np.exp(shifted).sum())
                top = np.argsort(-logprobs)[:beam_size]
                for token in top:
                    candidates.append((tokens + [int(token)],
                                       logp + float(logprobs[token]),
                                       token == cfg.eos_id,
                                       row_of[i]))

            def score(entry):
                tokens, logp, _, __ = entry
                norm = ((5.0 + len(tokens)) / 6.0) ** alpha
                return logp / norm

            candidates.sort(key=score, reverse=True)
            selected = candidates[:beam_size]
            beams = [(tokens, logp, finished)
                     for tokens, logp, finished, _ in selected]
            if all(finished for _, __, finished in beams):
                break
            cache.reorder([row for _, __, finished, row in selected
                           if not finished])
        best = beams[0][0][1:]  # drop BOS
        if cfg.eos_id in best:
            best = best[:best.index(cfg.eos_id)]
        return best

    def greedy_decode(self, src_ids: np.ndarray,
                      max_len: Optional[int] = None,
                      use_cache: bool = True) -> np.ndarray:
        """Batched greedy decoding; returns (B, <=max_len) token ids
        (without BOS, truncated at EOS per sequence).

        ``use_cache=True`` (the default) runs the KV-cached incremental
        path (:meth:`decode_step`); ``use_cache=False`` re-decodes the
        full prefix each step (the naive reference).
        """
        cfg = self.config
        max_len = max_len or cfg.max_len
        batch = src_ids.shape[0]
        with no_grad():
            memory = self.encode(src_ids)
            tokens = np.full((batch, 1), cfg.bos_id, dtype=np.int64)
            finished = np.zeros(batch, dtype=bool)
            cache = DecoderKVCache(len(self.decoder)) if use_cache else None
            for _ in range(max_len - 1):
                if use_cache:
                    out = self.decode_step(memory, src_ids, tokens, cache)
                else:
                    out = self.decode(memory, src_ids, tokens)
                logits = self.generator(out[:, -1, :]).data
                next_ids = logits.argmax(axis=-1)
                next_ids = np.where(finished, cfg.pad_id, next_ids)
                tokens = np.concatenate([tokens, next_ids[:, None]], axis=1)
                finished |= next_ids == cfg.eos_id
                if finished.all():
                    break
        return tokens[:, 1:]
