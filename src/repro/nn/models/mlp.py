"""Plain multi-layer perceptron (used in examples and smoke tests)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import functional as F
from ..layers import Linear
from ..module import Module, ModuleList
from ..tensor import Tensor

__all__ = ["MLP"]


class MLP(Module):
    """ReLU MLP: ``sizes = (in, hidden..., out)``."""

    def __init__(self, sizes: Sequence[int],
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.layers = ModuleList(
            [Linear(a, b, rng=rng) for a, b in zip(sizes[:-1], sizes[1:])])

    def forward(self, x) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = F.relu(x)
        return x
