"""The paper's three model families plus an MLP utility model."""

from .mlp import MLP
from .resnet import ResNet, ResNetConfig
from .seq2seq import Seq2Seq, Seq2SeqConfig
from .transformer import (Transformer, TransformerConfig, causal_mask,
                          padding_mask)

__all__ = [
    "MLP", "ResNet", "ResNetConfig", "Seq2Seq", "Seq2SeqConfig",
    "Transformer", "TransformerConfig", "causal_mask", "padding_mask",
]
