"""Residual CNN with BatchNorm (He et al. [10], scaled down).

Stands in for the paper's ImageNet ResNet-50 (Table 1): BasicBlock
residual stages with BatchNorm — the normalization whose weight-
reparameterization side effect keeps CNN weight ranges narrow (paper
Fig. 1) — followed by global average pooling and a linear classifier.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from .. import functional as F
from ..layers import BatchNorm2d, Conv2d, Linear
from ..module import Module, ModuleList
from ..tensor import Tensor, no_grad

__all__ = ["ResNet", "ResNetConfig"]


@dataclasses.dataclass
class ResNetConfig:
    """Hyper-parameters for the scaled-down residual CNN."""

    in_channels: int = 3
    num_classes: int = 10
    stage_channels: tuple = (16, 32, 64)
    blocks_per_stage: int = 2
    image_size: int = 16
    #: Mild per-filter init gains: converged CNNs are leptokurtic within
    #: each conv tensor even though their overall range is narrow (paper
    #: Fig. 1).  BatchNorm absorbs per-channel scale, so this is
    #: function-preserving at initialization.
    weight_gain_spread: float = 2.0


class _BasicBlock(Module):
    def __init__(self, in_ch: int, out_ch: int, stride: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_ch, out_ch, 3, stride=stride, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_ch)
        self.conv2 = Conv2d(out_ch, out_ch, 3, stride=1, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_ch)
        if stride != 1 or in_ch != out_ch:
            self.shortcut_conv = Conv2d(in_ch, out_ch, 1, stride=stride,
                                        bias=False, rng=rng)
            self.shortcut_bn = BatchNorm2d(out_ch)
        else:
            self.shortcut_conv = None
            self.shortcut_bn = None

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        shortcut = x
        if self.shortcut_conv is not None:
            shortcut = self.shortcut_bn(self.shortcut_conv(x))
        return F.relu(out + shortcut)


class ResNet(Module):
    """Small BasicBlock ResNet for NCHW images."""

    def __init__(self, config: Optional[ResNetConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.config = cfg = config or ResNetConfig()
        first = cfg.stage_channels[0]
        self.stem_conv = Conv2d(cfg.in_channels, first, 3, stride=1,
                                padding=1, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(first)
        blocks: List[Module] = []
        in_ch = first
        for stage, out_ch in enumerate(cfg.stage_channels):
            for block in range(cfg.blocks_per_stage):
                stride = 2 if (stage > 0 and block == 0) else 1
                blocks.append(_BasicBlock(in_ch, out_ch, stride, rng))
                in_ch = out_ch
        self.blocks = ModuleList(blocks)
        self.head = Linear(in_ch, cfg.num_classes, rng=rng)
        from .. import init as _init
        # init-time rescale, before any autodiff graph exists
        for name, module in self.named_modules():
            if isinstance(module, Conv2d):
                module.weight.data = _init.apply_row_gains(  # reprocheck: disable=AG001
                    module.weight.data, cfg.weight_gain_spread, rng)

    def forward(self, images: np.ndarray) -> Tensor:
        """``images``: (B, C, H, W) -> logits (B, num_classes)."""
        x = images if isinstance(images, Tensor) else Tensor(images)
        x = F.relu(self.stem_bn(self.stem_conv(x)))
        for block in self.blocks:
            x = block(x)
        return self.head(F.global_avg_pool2d(x))

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class prediction in eval mode (no autograd graph)."""
        with no_grad():
            return self.forward(images).data.argmax(axis=-1)
