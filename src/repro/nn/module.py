"""Module/Parameter system: stateful layers over the autodiff tensors.

Mirrors the familiar torch.nn design at the scale this project needs:
attribute assignment registers parameters and submodules, modules expose
``named_parameters`` / ``state_dict`` / ``train`` / ``eval``, and every
module carries two optional fake-quantization hooks used by
:mod:`repro.nn.quantize`:

* ``weight_fake_quant`` — applied to weight parameters inside layer
  forwards (the paper's weight quantization path),
* ``act_fake_quant``    — applied to layer outputs (the paper's
  activation quantization path, Table 3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Tuple

import numpy as np

from . import sanitize as _sanitize
from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList", "Sequential"]


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``).

    ``version`` counts content updates: every code path that replaces
    ``.data`` (optimizer steps, ``load_state_dict``, checkpoint restore,
    pruning, in-place PTQ) calls :meth:`bump_version` afterwards.
    Content-keyed caches — :class:`repro.nn.quantize.WeightFakeQuant`'s
    memoized quantized weights — use it to detect staleness without
    hashing array contents.
    """

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)
        self.version = 0

    def bump_version(self) -> None:
        """Mark the parameter's contents as changed (invalidates caches)."""
        self.version += 1


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "weight_fake_quant", None)
        object.__setattr__(self, "act_fake_quant", None)

    # --------------------------------------------------------- registration
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        elif name in getattr(self, "_buffers", {}):
            self._buffers[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Track non-trainable state (e.g. BatchNorm running statistics)
        so it travels with ``state_dict`` like torch buffers do."""
        self._buffers[name] = np.asarray(value, dtype=np.float32)
        object.__setattr__(self, name, self._buffers[name])

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, value in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), value
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_buffers(child_prefix)

    # ----------------------------------------------------------- iteration
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------ training
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ---------------------------------------------------------- state dict
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: param.data.copy()
                 for name, param in self.named_parameters()}
        for name, value in self.named_buffers():
            state[f"{name}@buffer"] = np.asarray(value).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        buffer_owners = {}
        for prefix, module in self.named_modules():
            for bname in module._buffers:
                key = f"{prefix}.{bname}" if prefix else bname
                buffer_owners[f"{key}@buffer"] = (module, bname)
        missing = (set(own) | set(buffer_owners)) - set(state)
        unexpected = set(state) - set(own) - set(buffer_owners)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {param.data.shape}")
            param.data = value.copy()
            param.bump_version()
        for key, (module, bname) in buffer_owners.items():
            value = np.asarray(state[key], dtype=np.float32)
            setattr(module, bname, value.copy())

    # ------------------------------------------------- single-tensor access
    def get_parameter(self, name: str) -> Parameter:
        """Resolve a dotted parameter name to its :class:`Parameter`."""
        module = self
        parts = name.split(".")
        for part in parts[:-1]:
            child = module._modules.get(part)
            if child is None:
                raise KeyError(f"no submodule {part!r} resolving {name!r}")
            module = child
        param = module._parameters.get(parts[-1])
        if param is None:
            raise KeyError(f"no parameter {name!r}")
        return param

    def swap_parameter(self, name: str, value: np.ndarray) -> np.ndarray:
        """Replace one parameter's backing array; return the previous one.

        The single-tensor alternative to round-tripping the full state
        dict: ``value`` is adopted (as float32, without copying an
        already-float32 array — the caller must not mutate it afterwards)
        and the parameter's content version is bumped, so version-keyed
        caches (:class:`repro.nn.quantize.WeightFakeQuant`) invalidate
        exactly as they would under ``load_state_dict``.  Swapping the
        returned array back restores the original contents; the restore
        bumps the version again, which is correct — the contents did
        change twice.
        """
        param = self.get_parameter(name)
        value = np.asarray(value, dtype=np.float32)
        if value.shape != param.data.shape:
            raise ValueError(f"shape mismatch for {name}: "
                             f"{value.shape} vs {param.data.shape}")
        previous = param.data
        param.data = value
        param.bump_version()
        return previous

    # -------------------------------------------------- quantization hooks
    def quant_weight(self, weight: Tensor) -> Tensor:
        """Route a weight parameter through the attached fake-quantizer."""
        if self.weight_fake_quant is None:
            return weight
        return self.weight_fake_quant(weight)

    def quant_act(self, x: Tensor) -> Tensor:
        """Route a layer output through the attached fake-quantizer."""
        if self.act_fake_quant is None:
            return x
        return self.act_fake_quant(x)

    # ------------------------------------------------------------- calling
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        state = _sanitize.current_state() if _sanitize._ACTIVE else None
        if state is None:
            return self.forward(*args, **kwargs)
        state.push_module(self)
        try:
            return self.forward(*args, **kwargs)
        finally:
            state.pop_module()


class ModuleList(Module):
    """A list of submodules, registered under their indices."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._list: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self._modules[str(len(self._list))] = module
        self._list.append(module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def __getitem__(self, idx: int) -> Module:
        return self._list[idx]


class Sequential(Module):
    """Apply submodules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._list: List[Module] = []
        for module in modules:
            self._modules[str(len(self._list))] = module
            self._list.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._list)

    def forward(self, x):
        for module in self._list:
            x = module(x)
        return x
