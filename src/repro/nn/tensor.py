"""A vectorized reverse-mode autodiff tensor over NumPy.

This is the training substrate standing in for PyTorch (DESIGN.md §2):
enough autograd to train and quantization-aware-retrain the paper's three
model families (Transformer, attention seq2seq LSTM, residual CNN) on a
CPU.  The design is the classic tape-free dynamic graph: each ``Tensor``
holds its data, an optional gradient, its parent tensors, and a closure
that routes its output gradient to the parents; ``backward()`` runs a
topological sort and accumulates.

Only operations the models need are implemented, each with full
broadcasting support.  Everything is float32 by default (float64 is
reserved for the number-format code, which is exactness-sensitive).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional, Tuple, Union

import numpy as np

__all__ = ["Tensor", "deterministic_matmul", "is_deterministic_matmul",
           "is_grad_enabled", "no_grad"]

from ..hardware.profiler import record_matmul as _record_matmul
from . import sanitize as _sanitize


class _ThreadState(threading.local):
    """Per-thread autodiff mode flags.

    The flags are thread-local so concurrent inference workers (the
    ``repro.serve`` engine runs decodes on worker threads) cannot race
    on each other's ``no_grad`` / ``deterministic_matmul`` scopes: with
    a process-global flag, worker A exiting ``no_grad`` would re-enable
    graph construction while worker B is mid-decode, making B's cached
    attention raise.  Every thread starts grad-enabled with the BLAS
    matmul kernel, matching the previous single-threaded defaults.
    """

    def __init__(self) -> None:
        self.grad_enabled = True
        self.det_matmul = False


_STATE = _ThreadState()


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        self._prev = _STATE.grad_enabled
        _STATE.grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        _STATE.grad_enabled = self._prev


def is_grad_enabled() -> bool:
    return _STATE.grad_enabled


class deterministic_matmul:
    """Context manager routing forward matmuls through a shape-stable kernel.

    BLAS gemm does not guarantee that row ``i`` of ``(M, K) @ (K, N)`` is
    bit-identical across different ``M`` (the micro-kernel and the gemv
    special case accumulate in different orders).  That makes "recompute
    the whole prefix" and "incremental with a KV cache" decoding agree
    only approximately.  Inside this context, ``Tensor.__matmul__`` uses
    an einsum kernel whose per-row reduction order depends only on the
    contracted axis, so the two decode strategies become bit-identical
    re-associations of the same float ops (docs/inference.md).  Slower
    than BLAS — meant for equivalence tests, not production decoding.
    """

    def __enter__(self) -> "deterministic_matmul":
        self._prev = _STATE.det_matmul
        _STATE.det_matmul = True
        return self

    def __exit__(self, *exc) -> None:
        _STATE.det_matmul = self._prev


def is_deterministic_matmul() -> bool:
    return _STATE.det_matmul


def _det_matmul_data(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Shape-stable matmul: per-row accumulation order fixed by the
    contracted axis alone (no M/N-dependent blocking)."""
    if a.ndim == 1 and b.ndim == 1:
        return np.einsum("i,i->", a, b)
    return np.einsum("...ij,...jk->...ik", a, b)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


TensorLike = Union["Tensor", np.ndarray, float, int]


class Tensor:
    """An autodiff-capable ndarray wrapper."""

    # _san_layer is only assigned while the numeric sanitizer is active
    # (repro.nn.sanitize); it records the module that created this tensor
    # so backward-pass findings can name the offending layer.
    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward",
                 "_san_layer")
    __array_priority__ = 100  # make ndarray defer to our __radd__ etc.

    def __init__(self, data, requires_grad: bool = False,
                 parents: Tuple["Tensor", ...] = (),
                 backward: Optional[Callable[[np.ndarray], None]] = None) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = parents if is_grad_enabled() else ()
        self._backward = backward if is_grad_enabled() else None

    # ------------------------------------------------------------ plumbing
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, do not mutate during training)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad})"

    # ------------------------------------------------------------ autograd
    def _needs_graph(self, *others: "Tensor") -> bool:
        if not is_grad_enabled():
            return False
        return any(t.requires_grad or t._parents for t in (self,) + others)

    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        if not is_grad_enabled() or not any(
                p.requires_grad or p._parents for p in parents):
            out = Tensor(data)
        else:
            out = Tensor(data, parents=parents, backward=backward)
        if _sanitize._ACTIVE:
            _sanitize.on_op(out, out.data, parents, backward)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float32)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if grad is None:
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                if _sanitize._ACTIVE:
                    _sanitize.on_grad(node)
                node._backward(node.grad)
        if _sanitize._ACTIVE:
            for node in topo:  # leaves: parameters and inputs
                if node._backward is None and node.grad is not None:
                    _sanitize.on_grad(node)

    # ---------------------------------------------------------- arithmetic
    @staticmethod
    def _wrap(x: TensorLike) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float32))

    def __add__(self, other: TensorLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: TensorLike) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(_unbroadcast(
                -grad * self.data / (other.data * other.data), other.shape))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return self._wrap(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._wrap(other)
        if (self.data.ndim == 1) != (other.data.ndim == 1):
            raise NotImplementedError(
                "matmul operands must both be >=2-D (or both 1-D dot)")
        _record_matmul(self.data.shape, other.data.shape)
        if _STATE.det_matmul:
            out_data = _det_matmul_data(self.data, other.data)
        else:
            out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1:  # 1-D dot product
                self._accumulate(grad * b)
                other._accumulate(grad * a)
                return
            ga = grad @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ grad
            self._accumulate(_unbroadcast(ga, a.shape))
            other._accumulate(_unbroadcast(gb, b.shape))

        return self._make(out_data, (self, other), backward)

    # ----------------------------------------------------------- unary ops
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data * out_data))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward)

    # ------------------------------------------------------------ reshapes
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(in_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.swapaxes(a, b))

        return self._make(self.data.swapaxes(a, b), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            full = np.zeros(in_shape, dtype=np.float32)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ----------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, in_shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        in_shape = self.shape
        count = self.data.size if axis is None else np.prod(
            [in_shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))])

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, in_shape) / count)

        return self._make(out_data, (self,), backward)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = out_data if (keepdims or axis is None) \
            else np.expand_dims(out_data, axis)
        mask = (self.data == expanded)
        counts = mask.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(mask * (g / counts))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------- helpers
    def clip_values(self, lo: float, hi: float) -> "Tensor":
        """Clamp with pass-through gradient only inside the range."""
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(np.clip(self.data, lo, hi), (self,), backward)


def _as_tensor_tuple(tensors: Iterable[TensorLike]) -> Tuple[Tensor, ...]:
    return tuple(t if isinstance(t, Tensor) else Tensor(t) for t in tensors)
