"""A compact NumPy NN framework with reverse-mode autodiff.

This package is the training/inference substrate for the paper's three
model families (DESIGN.md §2): tensors with autograd, layers, models,
optimizers, and the fake-quantization machinery for post-training
quantization (PTQ) and quantization-aware retraining (QAR).
"""

from . import decoding, functional, init, layers, optim, sanitize
from .decoding import (AttentionKVCache, DecoderKVCache, LayerKVCache,
                       pad_hypotheses)
from .layers import (LSTM, AdditiveAttention, BatchNorm2d, Conv2d, Dropout,
                     Embedding, GELU, LayerNorm, Linear, LSTMCell,
                     MultiHeadAttention, ReLU, Sigmoid, Tanh)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import Adam, SGD, clip_grad_norm
from .tensor import (Tensor, deterministic_matmul, is_deterministic_matmul,
                     is_grad_enabled, no_grad)
from . import models, prune, quantize, schedules
from .prune import magnitude_prune, sparsity_report
from .trainer import Trainer, TrainHistory
from .sanitize import (NumericFault, NumericFinding, SanitizeReport,
                       Sanitizer, scan_parameters)
from .quantize import (ActFakeQuant, QuantSpec, WeightFakeQuant,
                       attach_act_quantizers, attach_weight_quantizers,
                       calibrate, detach_quantizers,
                       quantize_weights_inplace,
                       reset_weight_quant_cache_stats,
                       weight_quant_cache_stats)

__all__ = [
    "ActFakeQuant", "Adam", "AdditiveAttention", "AttentionKVCache",
    "BatchNorm2d", "Conv2d", "DecoderKVCache",
    "Dropout", "Embedding", "GELU", "LSTM", "LSTMCell", "LayerKVCache",
    "LayerNorm",
    "Linear", "Module", "ModuleList", "MultiHeadAttention", "NumericFault",
    "NumericFinding", "Parameter",
    "QuantSpec", "ReLU", "SGD", "SanitizeReport", "Sanitizer", "Sequential",
    "Sigmoid", "Tanh", "Tensor",
    "WeightFakeQuant", "attach_act_quantizers", "attach_weight_quantizers",
    "TrainHistory", "Trainer", "calibrate", "clip_grad_norm",
    "decoding", "detach_quantizers", "deterministic_matmul",
    "functional", "init", "is_deterministic_matmul", "is_grad_enabled",
    "layers",
    "magnitude_prune", "models", "no_grad", "optim", "pad_hypotheses",
    "prune", "quantize",
    "sanitize", "scan_parameters",
    "quantize_weights_inplace", "reset_weight_quant_cache_stats",
    "schedules", "sparsity_report", "weight_quant_cache_stats",
]
