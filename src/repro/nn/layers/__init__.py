"""Neural-network layers built on the autodiff tensor."""

from .activation import GELU, ReLU, Sigmoid, Tanh
from .attention import AdditiveAttention, MultiHeadAttention
from .conv import Conv2d
from .dropout import Dropout
from .embedding import Embedding
from .linear import Linear
from .norm import BatchNorm2d, LayerNorm
from .recurrent import LSTM, LSTMCell

__all__ = [
    "AdditiveAttention", "BatchNorm2d", "Conv2d", "Dropout", "Embedding",
    "GELU", "LSTM", "LSTMCell", "LayerNorm", "Linear", "MultiHeadAttention",
    "ReLU", "Sigmoid", "Tanh",
]
