"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Linear"]


class Linear(Module):
    """``y = x W^T + b`` over the last axis of ``x``.

    The weight is routed through :meth:`Module.quant_weight` and the
    output through :meth:`Module.quant_act`, so attaching fake-quantizers
    turns this into the paper's quantized FC layer with no code changes.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_normal(
            (out_features, in_features), in_features, out_features, rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        weight = self.quant_weight(self.weight)
        out = x @ weight.swapaxes(0, 1)
        if self.bias is not None:
            out = out + self.bias
        return self.quant_act(out)
