"""Attention mechanisms: scaled-dot-product multi-head and additive.

Multi-head attention drives the Transformer (paper Table 1, "Attention,
FC layers"); additive (Bahdanau-style) attention drives the seq2seq
speech model [4].
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from ..decoding import AttentionKVCache
from ..module import Module
from ..tensor import Tensor, is_grad_enabled
from .linear import Linear

__all__ = ["AdditiveAttention", "MultiHeadAttention"]


class MultiHeadAttention(Module):
    """Standard multi-head attention (Vaswani et al. [28])."""

    def __init__(self, d_model: int, num_heads: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if d_model % num_heads:
            raise ValueError(f"d_model={d_model} not divisible by heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.w_q = Linear(d_model, d_model, rng=rng)
        self.w_k = Linear(d_model, d_model, rng=rng)
        self.w_v = Linear(d_model, d_model, rng=rng)
        self.w_o = Linear(d_model, d_model, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(self, query: Tensor, key: Tensor, value: Tensor,
                mask: Optional[np.ndarray] = None,
                cache: Optional[AttentionKVCache] = None) -> Tensor:
        """``query``: (B, Tq, D); ``key``/``value``: (B, Tk, D).

        ``mask``: boolean array broadcastable to (B, heads, Tq, Tk);
        True marks *blocked* positions.

        ``cache`` enables incremental decoding (inference-only, must run
        under ``no_grad``): a ``"self"`` cache appends the new
        positions' K/V projections and attends over everything cached so
        far; a ``"cross"`` cache projects ``key``/``value`` (the encoder
        memory) on first use and reuses the stored projections — the
        ``key``/``value`` arguments are ignored afterwards.
        """
        if cache is not None and is_grad_enabled():
            raise RuntimeError(
                "KV-cached attention is inference-only; wrap decoding in "
                "no_grad() (cached K/V do not join the autodiff graph)")
        batch, tq, _ = query.shape
        q = self._split_heads(self.w_q(query))
        if cache is None:
            k = self._split_heads(self.w_k(key))
            v = self._split_heads(self.w_v(value))
        elif cache.kind == "cross":
            if cache.k is None:
                cache.set(self._split_heads(self.w_k(key)).data,
                          self._split_heads(self.w_v(value)).data)
            k, v = Tensor(cache.k), Tensor(cache.v)
        else:
            k_new = self._split_heads(self.w_k(key))
            v_new = self._split_heads(self.w_v(value))
            k_full, v_full = cache.append(k_new.data, v_new.data)
            k, v = Tensor(k_full), Tensor(v_full)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.d_head))
        if mask is not None:
            scores = F.masked_fill(scores, mask, -1e9)
        attn = F.softmax(scores, axis=-1)
        context = attn @ v  # (B, H, Tq, d_head)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, tq, self.d_model)
        return self.w_o(merged)


class AdditiveAttention(Module):
    """Bahdanau attention: ``score = v^T tanh(W_q q + W_k k)``."""

    def __init__(self, query_size: int, key_size: int, attn_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.w_query = Linear(query_size, attn_size, bias=False, rng=rng)
        self.w_key = Linear(key_size, attn_size, bias=False, rng=rng)
        self.v = Linear(attn_size, 1, bias=False, rng=rng)

    def project_keys(self, keys: Tensor) -> Tensor:
        """One-shot ``W_k keys`` projection for incremental decoding.

        The keys (encoder memory) are fixed for a whole decode, so the
        projection can be computed once and passed back to every
        :meth:`forward` call as ``keys_proj`` instead of being recomputed
        each step.
        """
        return self.w_key(keys)

    def forward(self, query: Tensor, keys: Tensor,
                mask: Optional[np.ndarray] = None,
                keys_proj: Optional[Tensor] = None) -> Tensor:
        """``query``: (B, Q); ``keys``: (B, T, K) -> context (B, K).

        ``keys_proj`` optionally supplies a precomputed
        :meth:`project_keys` result (it must match ``keys``).
        """
        batch, steps, key_size = keys.shape
        q = self.w_query(query).reshape(batch, 1, -1)
        k = self.w_key(keys) if keys_proj is None else keys_proj
        scores = self.v((q + k).tanh()).reshape(batch, steps)
        if mask is not None:
            scores = F.masked_fill(scores, mask, -1e9)
        weights = F.softmax(scores, axis=-1).reshape(batch, 1, steps)
        context = weights @ keys  # (B, 1, K)
        return context.reshape(batch, key_size)
