"""LSTM layers (cell and multi-layer sequence module).

The seq2seq speech model (paper Table 1) and the accelerator workload
(paper Section 6: "100 LSTM time steps with 256 hidden units") both rest
on this module.  Gates follow the standard order i, f, g, o; the forget
gate carries a +1 bias at init for stable early training.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, ModuleList, Parameter
from ..tensor import Tensor

__all__ = ["LSTM", "LSTMCell"]


class LSTMCell(Module):
    """One LSTM step: ``(x_t, (h, c)) -> (h', c')``."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        rng = init.default_rng(rng)
        self.weight_ih = Parameter(init.xavier_normal(
            (4 * hidden_size, input_size), input_size, hidden_size, rng))
        self.weight_hh = Parameter(init.xavier_normal(
            (4 * hidden_size, hidden_size), hidden_size, hidden_size, rng))
        bias = init.zeros((4 * hidden_size,))
        bias[hidden_size:2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Parameter(bias)

    def forward(self, x: Tensor,
                state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        w_ih = self.quant_weight(self.weight_ih)
        w_hh = self.quant_weight(self.weight_hh)
        gates = x @ w_ih.swapaxes(0, 1) + h_prev @ w_hh.swapaxes(0, 1) + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs:1 * hs].sigmoid()
        f = gates[:, 1 * hs:2 * hs].sigmoid()
        g = gates[:, 2 * hs:3 * hs].tanh()
        o = gates[:, 3 * hs:4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return self.quant_act(h), c

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size), dtype=np.float32)
        return Tensor(zeros), Tensor(zeros.copy())


class LSTM(Module):
    """Stacked unidirectional LSTM over ``(batch, time, features)`` input."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        cells = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cells.append(LSTMCell(in_size, hidden_size, rng))
        self.cells = ModuleList(cells)

    def forward(self, x: Tensor,
                state: Optional[List[Tuple[Tensor, Tensor]]] = None
                ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        batch, steps, _ = x.shape
        if state is None:
            state = [cell.initial_state(batch) for cell in self.cells]
        outputs = []
        for t in range(steps):
            inp = x[:, t, :]
            new_state = []
            for layer, cell in enumerate(self.cells):
                h, c = cell(inp, state[layer])
                new_state.append((h, c))
                inp = h
            state = new_state
            outputs.append(inp.reshape(batch, 1, self.hidden_size))
        return F.cat(outputs, axis=1), state
