"""Dropout layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module
from ..tensor import Tensor

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = init.default_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)
