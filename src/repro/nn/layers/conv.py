"""2-D convolution layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Conv2d"]


class Conv2d(Module):
    """NCHW 2-D convolution with square kernel/stride/padding."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(init.kaiming_normal(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        weight = self.quant_weight(self.weight)
        out = F.conv2d(x, weight, self.bias,
                       stride=self.stride, padding=self.padding)
        return self.quant_act(out)
