"""Normalisation layers.

The paper's Figure 1 observation hinges on the difference between these
two: BatchNorm reparameterizes weights (keeping CNN weight ranges
narrow) while LayerNorm does not (letting Transformer weights grow an
order of magnitude larger).  Both are implemented as autodiff composites
so quantization-aware retraining differentiates through them.
"""

from __future__ import annotations

import numpy as np

from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["BatchNorm2d", "LayerNorm"]


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        inv_std = (var + self.eps) ** -0.5
        return centered * inv_std * self.weight + self.bias


class BatchNorm2d(Module):
    """Batch normalisation for NCHW feature maps with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1) -> None:
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        # Running statistics are buffers: saved/restored with state_dict
        # but not trained.
        self.register_buffer("running_mean", np.zeros(num_features, np.float32))
        self.register_buffer("running_var", np.ones(num_features, np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mu
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mu.data.reshape(-1))
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var.data.reshape(-1))
        else:
            mu = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            centered = x - mu
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        inv_std = (var + self.eps) ** -0.5
        scale = self.weight.reshape(1, -1, 1, 1)
        shift = self.bias.reshape(1, -1, 1, 1)
        return centered * inv_std * scale + shift
