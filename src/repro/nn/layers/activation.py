"""Activation-function layers (stateless wrappers over functional ops)."""

from __future__ import annotations

from .. import functional as F
from ..module import Module
from ..tensor import Tensor

__all__ = ["GELU", "ReLU", "Sigmoid", "Tanh"]


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return self.quant_act(F.relu(x))


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return self.quant_act(F.gelu(x))


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return self.quant_act(F.tanh(x))


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return self.quant_act(F.sigmoid(x))
