"""Token embedding layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Embedding"]


class Embedding(Module):
    """Integer-id to vector lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal(
            (num_embeddings, embedding_dim), std=0.05, rng=rng))

    def forward(self, ids: np.ndarray) -> Tensor:
        weight = self.quant_weight(self.weight)
        return self.quant_act(F.embedding(weight, ids))
