"""Incremental-decoding support: KV caches and shared beam utilities.

Autoregressive evaluation is the repo's dominant cost (every BLEU/WER
cell in Tables 1-3 is produced by greedy or beam decoding), and the
naive strategy re-runs the entire token prefix through every decoder
layer at each step.  This module holds the state that makes decoding
incremental:

* :class:`AttentionKVCache` — per-attention-module key/value store.  A
  ``"self"`` cache grows by one position per decode step (append-only);
  a ``"cross"`` cache projects the encoder memory exactly once and
  reuses it for every subsequent step.
* :class:`LayerKVCache` / :class:`DecoderKVCache` — one self+cross pair
  per decoder layer, with batched reordering so beam search can prune
  and reorder all live hypotheses in one gather (``reorder``).
* :func:`pad_hypotheses` — the padding logic shared by
  ``Transformer.beam_decode`` and ``Seq2Seq.beam_decode`` (with a floor
  width of 1 so an all-empty-hypothesis batch cannot produce a
  zero-width column).

Caches hold plain float32 arrays, not autodiff tensors: incremental
decoding is inference-only and must run under
:class:`~repro.nn.tensor.no_grad` (the attention layer enforces this).
The design and its bit-exactness contract are documented in
docs/inference.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["AttentionKVCache", "DecoderKVCache", "LayerKVCache",
           "assemble_source_batch", "pad_hypotheses", "strip_hypotheses"]


class AttentionKVCache:
    """Cached key/value projections for one attention module.

    ``kind`` selects the update discipline:

    * ``"self"`` — :meth:`append` concatenates the new positions' K/V
      along the sequence axis and returns the full cached arrays;
    * ``"cross"`` — :meth:`set` stores the one-shot encoder-memory
      projections, reused verbatim on every later step.
    """

    def __init__(self, kind: str) -> None:
        if kind not in ("self", "cross"):
            raise ValueError(f"unknown cache kind {kind!r}")
        self.kind = kind
        self.k: Optional[np.ndarray] = None
        self.v: Optional[np.ndarray] = None

    @property
    def length(self) -> int:
        """Number of cached key positions (0 when empty)."""
        return 0 if self.k is None else self.k.shape[2]

    def set(self, k: np.ndarray, v: np.ndarray) -> None:
        """Store one-shot projections (cross-attention memory K/V)."""
        self.k, self.v = k, v

    def append(self, k_new: np.ndarray,
               v_new: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Append ``(B, H, T_new, d)`` K/V and return the full arrays."""
        if self.kind != "self":
            raise ValueError("append() is only valid on a 'self' cache")
        if self.k is None:
            self.k, self.v = k_new, v_new
        else:
            self.k = np.concatenate([self.k, k_new], axis=2)
            self.v = np.concatenate([self.v, v_new], axis=2)
        return self.k, self.v

    def reorder(self, indices: np.ndarray) -> None:
        """Gather cache rows along the batch axis (beam select/prune).

        ``indices`` may repeat rows (a parent hypothesis surviving as
        several children) or drop rows (pruned hypotheses).
        """
        if self.k is not None:
            self.k = self.k[indices]
            self.v = self.v[indices]


class LayerKVCache:
    """Self + cross attention caches for one decoder layer."""

    def __init__(self) -> None:
        self.self_attn = AttentionKVCache("self")
        self.cross_attn = AttentionKVCache("cross")

    def reorder(self, indices: np.ndarray) -> None:
        self.self_attn.reorder(indices)
        self.cross_attn.reorder(indices)


class DecoderKVCache:
    """Per-layer KV caches for a whole decoder stack."""

    def __init__(self, num_layers: int) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.layers: List[LayerKVCache] = [LayerKVCache()
                                           for _ in range(num_layers)]

    @property
    def length(self) -> int:
        """Number of decoded positions the cache covers."""
        return self.layers[0].self_attn.length

    def reorder(self, indices: np.ndarray) -> None:
        """Reorder every layer's caches along the batch axis."""
        indices = np.asarray(indices, dtype=np.int64)
        for layer in self.layers:
            layer.reorder(indices)


def pad_hypotheses(hypotheses: Sequence[Sequence[int]],
                   pad_id: int) -> np.ndarray:
    """Stack variable-length token-id lists into a padded ``(B, W)`` array.

    ``W`` is the longest hypothesis length with a floor of 1, so a batch
    whose hypotheses are all empty still yields one (all-padding) column
    — downstream metric code indexes column 0 unconditionally.
    """
    width = max([len(h) for h in hypotheses] + [1])
    out = np.full((len(hypotheses), width), pad_id, dtype=np.int64)
    for i, hyp in enumerate(hypotheses):
        out[i, :len(hyp)] = hyp
    return out


def assemble_source_batch(sources: Sequence[Sequence[int]], pad_id: int,
                          eos_id: int) -> np.ndarray:
    """Pack ragged source token lists into one EOS-terminated padded batch.

    Each row is ``tokens + [EOS]`` followed by padding up to the longest
    row — the convention the training data generators use
    (``TranslationTask.make_batch``) and the one micro-batch serving
    relies on.  Padding is *inert* for the Transformer: ``padding_mask``
    gives pad keys softmax weight exactly 0.0 (``exp(-1e9)`` underflows),
    so a request decodes to the same tokens whatever padded batch it
    rides in (verified bit-exactly under ``deterministic_matmul`` in
    tests/serve/test_equivalence.py).
    """
    if not len(sources):
        raise ValueError("cannot assemble an empty source batch")
    width = max(len(s) for s in sources) + 1
    out = np.full((len(sources), width), pad_id, dtype=np.int64)
    for i, tokens in enumerate(sources):
        out[i, :len(tokens)] = tokens
        out[i, len(tokens)] = eos_id
    return out


def strip_hypotheses(ids: np.ndarray, pad_id: int,
                     eos_id: int) -> List[List[int]]:
    """Split a decoded ``(B, W)`` id matrix into per-row token lists,
    truncating each row at its first EOS or PAD."""
    out: List[List[int]] = []
    for row in np.asarray(ids):
        tokens: List[int] = []
        for token in row:
            if token in (eos_id, pad_id):
                break
            tokens.append(int(token))
        out.append(tokens)
    return out
