"""Functional neural-network operations over :class:`~repro.nn.tensor.Tensor`.

Custom-gradient ops live here (softmax, conv2d, pooling, fake
quantization with a straight-through estimator); layers in
:mod:`repro.nn.layers` are thin stateful wrappers around these.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..rng import default_rng
from . import sanitize as _sanitize
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "avg_pool2d", "cat", "conv2d", "cross_entropy", "dropout", "embedding",
    "fake_quantize", "gelu", "global_avg_pool2d", "log_softmax",
    "masked_fill", "max_pool2d", "relu", "sigmoid", "softmax", "tanh",
]


def _op(data: np.ndarray, parents: Tuple[Tensor, ...],
        backward: Callable[[np.ndarray], None]) -> Tensor:
    """Build an op-output tensor, skipping the graph when not needed."""
    if not is_grad_enabled() or not any(
            p.requires_grad or p._parents for p in parents):
        out = Tensor(data)
    else:
        out = Tensor(data, parents=parents, backward=backward)
    if _sanitize._ACTIVE:
        _sanitize.on_op(out, out.data, parents, backward)
    return out


# --------------------------------------------------------------- activations
def relu(x: Tensor) -> Tensor:
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def gelu(x: Tensor) -> Tensor:
    """GELU with the tanh approximation (exact gradient of the approximation)."""
    c = np.float32(np.sqrt(2.0 / np.pi))
    a = np.float32(0.044715)
    inner = c * (x.data + a * x.data ** 3)
    t = np.tanh(inner)
    out = 0.5 * x.data * (1.0 + t)

    def backward(grad: np.ndarray) -> None:
        dinner = c * (1.0 + 3.0 * a * x.data ** 2)
        dx = 0.5 * (1.0 + t) + 0.5 * x.data * (1.0 - t * t) * dinner
        x._accumulate(grad * dx)

    return _op(out, (x,), backward)


# ------------------------------------------------------------------- softmax
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    y = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * y).sum(axis=axis, keepdims=True)
        x._accumulate(y * (grad - dot))

    return _op(y, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    y = shifted - logsum

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - np.exp(y) * grad.sum(axis=axis, keepdims=True))

    return _op(y, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: Optional[int] = None,
                  label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy over the last axis of ``logits``.

    ``logits``: ``(..., vocab)``; ``targets``: integer array shaped like
    ``logits`` minus the last axis.  Positions equal to ``ignore_index``
    contribute nothing (padding). ``label_smoothing`` spreads that much
    probability mass uniformly over the vocabulary.
    """
    targets = np.asarray(targets)
    vocab = logits.shape[-1]
    flat_logits = logits.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        keep = flat_targets != ignore_index
    else:
        keep = np.ones_like(flat_targets, dtype=bool)
    count = max(int(keep.sum()), 1)

    logp = log_softmax(flat_logits, axis=-1)
    rows = np.nonzero(keep)[0]
    picked = logp[rows, flat_targets[keep]]
    nll = -picked.sum() / count
    if label_smoothing > 0.0:
        smooth = -logp[rows].mean(axis=-1).sum() / count
        nll = (1.0 - label_smoothing) * nll + label_smoothing * smooth
    return nll


# ----------------------------------------------------------------- embedding
def embedding(weight: Tensor, ids: np.ndarray) -> Tensor:
    """Row lookup ``weight[ids]`` with scatter-add gradient."""
    return weight[np.asarray(ids)]


# ------------------------------------------------------------------- masking
def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    mask = np.asarray(mask, dtype=bool)
    out = np.where(mask, np.float32(value), x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(np.where(mask, 0.0, grad))

    return _op(out, (x,), backward)


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    if not training or p <= 0.0:
        return x
    rng = default_rng(rng)
    keep = (rng.random(x.shape) >= p).astype(np.float32) / np.float32(1.0 - p)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * keep)

    return _op(x.data * keep, (x,), backward)


# ------------------------------------------------------------- concatenation
def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(lo, hi)
            t._accumulate(grad[tuple(index)])

    return _op(out, tuple(tensors), backward)


# ------------------------------------------------------------- convolutions
def _pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution, NCHW layout, square stride/padding.

    ``x``: (B, C, H, W); ``weight``: (F, C, KH, KW); output (B, F, OH, OW).
    Implemented with an im2col strided view and a single GEMM.
    """
    batch, in_ch, _, _ = x.shape
    out_ch, w_in_ch, kh, kw = weight.shape
    if w_in_ch != in_ch:
        raise ValueError(f"channel mismatch: input {in_ch}, weight {w_in_ch}")
    xp = _pad_input(x.data, padding)
    ph, pw = xp.shape[2], xp.shape[3]
    oh = (ph - kh) // stride + 1
    ow = (pw - kw) // stride + 1

    from ..hardware.profiler import record_conv2d
    record_conv2d(batch, out_ch, in_ch, kh, kw, oh, ow)

    sb, sc, sh, sw = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp, shape=(batch, in_ch, kh, kw, oh, ow),
        strides=(sb, sc, sh, sw, sh * stride, sw * stride), writeable=False)
    cols = windows.reshape(batch, in_ch * kh * kw, oh * ow)
    wmat = weight.data.reshape(out_ch, in_ch * kh * kw)
    out = (wmat[None] @ cols).reshape(batch, out_ch, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, out_ch, 1, 1)

    def backward(grad: np.ndarray) -> None:
        gout = grad.reshape(batch, out_ch, oh * ow)
        gw = np.einsum("bfo,bco->fc", gout, cols,
                       optimize=True).reshape(weight.shape)
        weight._accumulate(gw)
        if bias is not None:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        gcols = (wmat.T[None] @ gout).reshape(batch, in_ch, kh, kw, oh, ow)
        gx_pad = np.zeros_like(xp)
        for i in range(kh):
            for j in range(kw):
                gx_pad[:, :, i:i + stride * oh:stride,
                       j:j + stride * ow:stride] += gcols[:, :, i, j]
        if padding:
            gx_pad = gx_pad[:, :, padding:ph - padding, padding:pw - padding]
        x._accumulate(gx_pad)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return _op(out, parents, backward)


# ----------------------------------------------------------------- pooling
def max_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Max pooling with stride == kernel (the only case the models need)."""
    batch, ch, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(batch, ch, oh, kernel, ow, kernel)
    flat = view.transpose(0, 1, 2, 4, 3, 5).reshape(batch, ch, oh, ow, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        gflat = np.zeros_like(flat)
        np.put_along_axis(gflat, arg[..., None], grad[..., None], axis=-1)
        gx = gflat.reshape(batch, ch, oh, ow, kernel, kernel) \
            .transpose(0, 1, 2, 4, 3, 5).reshape(batch, ch, h, w)
        x._accumulate(gx)

    return _op(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Average pooling with stride == kernel."""
    batch, ch, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(batch, ch, oh, kernel, ow, kernel)
    out = view.mean(axis=(3, 5))

    def backward(grad: np.ndarray) -> None:
        gx = np.repeat(np.repeat(grad, kernel, axis=2), kernel, axis=3)
        x._accumulate(gx / (kernel * kernel))

    return _op(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dimensions: (B, C, H, W) -> (B, C)."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------- fake quantization/STE
def fake_quantize(x: Tensor, quantize_fn: Callable[[np.ndarray], np.ndarray],
                  ste_mask: Optional[np.ndarray] = None) -> Tensor:
    """Quantize in the forward pass; straight-through in the backward pass.

    This is the standard quantization-aware-training construction: the
    non-differentiable rounding is treated as identity for gradients
    (optionally masked by ``ste_mask``, e.g. to zero gradients of clamped
    values), so the optimizer keeps updating the latent FP32 weights while
    the loss sees quantized values — the paper's QAR procedure.
    """
    out = np.asarray(quantize_fn(x.data), dtype=np.float32)
    if _sanitize._ACTIVE:
        _sanitize.on_quantize(x.data, out)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad if ste_mask is None else grad * ste_mask)

    return _op(out, (x,), backward)
