"""Magnitude pruning, composable with AdaptivFloat quantization.

Paper Section 2: "Deep Compression techniques [9] such as pruning and
weight sharing can be used in combination to this work".  This module
provides global / per-layer magnitude pruning over the same layer set
the quantizers target, plus the observation that makes the composition
free: AdaptivFloat represents zero exactly (the re-purposed bottom
codepoint), so pruned weights survive quantization bit-exactly — unlike
IEEE-like float grids where only the subnormal floor guarantees a zero.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

import numpy as np

from .module import Module
from .quantize import DEFAULT_QUANTIZED_LAYERS

__all__ = ["magnitude_prune", "sparsity_report"]


def _weight_params(model: Module,
                   layer_types: Tuple[Type[Module], ...]):
    for name, module in model.named_modules():
        if not isinstance(module, layer_types):
            continue
        for pname, param in module._parameters.items():
            if pname == "bias" or pname.startswith("bias"):
                continue
            yield f"{name}.{pname}" if name else pname, param


def magnitude_prune(model: Module, sparsity: float,
                    scope: str = "global",
                    layer_types: Tuple[Type[Module], ...] = DEFAULT_QUANTIZED_LAYERS
                    ) -> Dict[str, np.ndarray]:
    """Zero the smallest-magnitude weights in place.

    ``sparsity`` is the target fraction of zeros in [0, 1).  With
    ``scope="global"`` one threshold is chosen over all layers (larger
    layers absorb more pruning); ``scope="layer"`` prunes each weight
    tensor to the target independently.  Returns the boolean keep-masks
    (True = kept) keyed by parameter name, for mask-respecting
    fine-tuning.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    if scope not in ("global", "layer"):
        raise ValueError(f"unknown scope {scope!r}")
    params = list(_weight_params(model, layer_types))
    if not params:
        raise ValueError("no prunable weights found")

    masks: Dict[str, np.ndarray] = {}
    if scope == "global":
        magnitudes = np.concatenate([np.abs(p.data).ravel() for _, p in params])
        k = int(sparsity * magnitudes.size)
        threshold = np.partition(magnitudes, k)[k] if k > 0 else -1.0
        for name, param in params:
            mask = np.abs(param.data) > threshold
            param.data = param.data * mask
            param.bump_version()
            masks[name] = mask
    else:
        for name, param in params:
            flat = np.abs(param.data).ravel()
            k = int(sparsity * flat.size)
            threshold = np.partition(flat, k)[k] if k > 0 else -1.0
            mask = np.abs(param.data) > threshold
            param.data = param.data * mask
            param.bump_version()
            masks[name] = mask
    return masks


def sparsity_report(model: Module,
                    layer_types: Tuple[Type[Module], ...] = DEFAULT_QUANTIZED_LAYERS
                    ) -> Dict[str, float]:
    """Fraction of exact zeros per weight tensor plus the overall rate."""
    report: Dict[str, float] = {}
    zeros = 0
    total = 0
    for name, param in _weight_params(model, layer_types):
        z = int((param.data == 0.0).sum())
        report[name] = z / param.data.size
        zeros += z
        total += param.data.size
    if total == 0:
        raise ValueError("no prunable weights found")
    report["__overall__"] = zeros / total
    return report
