"""Fake-quantization of weights and activations (PTQ and QAR).

This module wires the number formats of :mod:`repro.formats` into the NN
framework, following the paper's procedures:

* **Weights** (Tables 2): every weight matrix is routed through a
  :class:`WeightFakeQuant` that re-derives the adaptive parameter
  (``exp_bias`` / scale / shared exponent) from the *current* FP32 weight
  each forward — Algorithm 1's per-layer self-adaptation.  Gradients use
  the straight-through estimator, so quantization-aware retraining (QAR)
  keeps updating latent FP32 weights.
* **Activations** (Table 3): each layer output passes through an
  :class:`ActFakeQuant` whose adaptive parameter is frozen from max-|x|
  statistics gathered during offline calibration batches — exactly how
  the paper's HFINT PE gets its activation ``exp_bias`` ("informed from
  statistics during offline batch inference", Section 5.2).

Use :func:`attach_weight_quantizers` / :func:`attach_act_quantizers` to
instrument a model, :func:`calibrate` to fit activation observers, and
:func:`quantize_weights_inplace` for one-shot PTQ of a frozen model.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type

import numpy as np

from .. import obs
from ..formats import AdaptiveQuantizer, Quantizer, make_quantizer
from ..rng import fresh_rng
from . import functional as F
from .layers import Conv2d, Embedding, Linear, LSTMCell
from .module import Module
from .tensor import Tensor

__all__ = [
    "QuantSpec", "WeightFakeQuant", "ActFakeQuant",
    "attach_weight_quantizers", "attach_act_quantizers",
    "detach_quantizers", "calibrate", "quantize_weights_inplace",
    "weight_quant_cache_stats", "reset_weight_quant_cache_stats",
    "DEFAULT_QUANTIZED_LAYERS",
]

#: Layer types whose weights/outputs the paper's experiments quantize.
#: Norm scale/shift vectors and biases stay in high precision, matching
#: common accelerator practice (they ride the high-precision accumulator).
DEFAULT_QUANTIZED_LAYERS: Tuple[Type[Module], ...] = (
    Linear, Conv2d, Embedding, LSTMCell)

# Process-wide memo outcome counters, summed over every WeightFakeQuant
# instance.  The per-instance ``hits``/``misses`` attributes remain the
# per-model view (:func:`weight_quant_cache_stats`); these feed the same
# events into ``repro.obs`` so one snapshot covers every attached model.
_WQ_CACHE = obs.counter(
    "repro_weight_quant_cache_total", "Weight-quantization memo "
    "outcomes, summed over all WeightFakeQuant instances.", ("outcome",))
_WQ_HIT = _WQ_CACHE.labels(outcome="hit")
_WQ_MISS = _WQ_CACHE.labels(outcome="miss")


@dataclasses.dataclass(frozen=True)
class QuantSpec:
    """A (format, bits, overrides) triple; builds fresh quantizers."""

    fmt: str
    bits: int
    overrides: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def build(self) -> Quantizer:
        return make_quantizer(self.fmt, self.bits, **dict(self.overrides))

    @property
    def label(self) -> str:
        return f"{self.fmt}{self.bits}"


class WeightFakeQuant:
    """Per-forward weight fake-quantizer with STE gradients.

    The quantized array is memoized per weight tensor, keyed on the
    :class:`~repro.nn.module.Parameter` content-version counter plus the
    identity of the backing array, so a frozen model (PTQ evaluation)
    quantizes each weight exactly once per sweep cell while QAR — whose
    optimizer bumps the version on every step — re-quantizes after every
    update.  The contract: any code replacing ``param.data`` must call
    ``param.bump_version()`` (all in-repo sites do); mutating the array
    *in place* without a bump is outside the contract.  Set the
    ``REPRO_NO_WQCACHE`` environment variable to disable memoization.

    ``hits`` / ``misses`` count cache outcomes for reporting and tests
    (see :func:`weight_quant_cache_stats`).
    """

    def __init__(self, quantizer: Quantizer) -> None:
        self.quantizer = quantizer
        self.hits = 0
        self.misses = 0
        # id(weight Tensor) -> (version, backing array, quantized array)
        self._cache: Dict[int, Tuple[int, np.ndarray, np.ndarray]] = {}

    def _quantized(self, weight: Tensor) -> np.ndarray:
        version = getattr(weight, "version", None)
        if version is None or os.environ.get("REPRO_NO_WQCACHE"):
            self.misses += 1
            _WQ_MISS.inc()
            return self.quantizer.quantize(weight.data)
        entry = self._cache.get(id(weight))
        if entry is not None and entry[0] == version \
                and entry[1] is weight.data:
            self.hits += 1
            _WQ_HIT.inc()
            return entry[2]
        self.misses += 1
        _WQ_MISS.inc()
        quantized = np.asarray(self.quantizer.quantize(weight.data),
                               dtype=np.float32)
        self._cache[id(weight)] = (version, weight.data, quantized)
        return quantized

    def __call__(self, weight: Tensor) -> Tensor:
        quantized = self._quantized(weight)
        return F.fake_quantize(weight, lambda _data, _q=quantized: _q)

    def __repr__(self) -> str:  # pragma: no cover
        return f"WeightFakeQuant({self.quantizer!r})"


class ActFakeQuant:
    """Stateful activation fake-quantizer with offline calibration.

    Modes:

    * ``"bypass"``  — identity (fresh instances start here),
    * ``"observe"`` — record range statistics and pass through,
    * ``"apply"``   — quantize on the grid frozen by :meth:`freeze`.

    ``calibration`` selects how the adaptive range anchor is derived:
    ``"max"`` (the paper's rule, Section 5.2) anchors at the observed
    maximum; ``"percentile"`` anchors at the given percentile of |x|,
    clipping activation outliers in exchange for finer resolution of the
    bulk (an extension ablation; cf. TensorRT-style calibration).
    """

    _SAMPLE_CAP = 65_536

    def __init__(self, quantizer: Quantizer, calibration: str = "max",
                 percentile: float = 99.9,
                 sample_seed: int = 0x5EED) -> None:
        if calibration not in ("max", "percentile"):
            raise ValueError(f"unknown calibration {calibration!r}")
        if not 0.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        self.quantizer = quantizer
        self.calibration = calibration
        self.percentile = percentile
        self.mode = "bypass"
        self.max_abs = 0.0
        self._sample_rng = fresh_rng(sample_seed)
        self._sample_keys: Optional[np.ndarray] = None
        self._sample_vals: Optional[np.ndarray] = None
        self._sample_count = 0
        self.params: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------ control
    def observe(self) -> None:
        self.mode = "observe"

    def _record(self, data: np.ndarray) -> None:
        flat = np.abs(data).ravel()
        if not flat.size:
            return
        self.max_abs = max(self.max_abs, float(flat.max()))
        if self.calibration != "percentile":
            return
        # Bottom-k random-key reservoir: tag every observed element with a
        # uniform key and keep the _SAMPLE_CAP smallest keys seen so far.
        # This is a uniform sample *without replacement over the whole
        # stream*, unlike a strided prefix take, which over-weights early
        # batches (and, once full, ignores later ones entirely).
        keys = self._sample_rng.random(flat.size)
        vals = np.asarray(flat, dtype=np.float32)
        if self._sample_keys is not None:
            keys = np.concatenate([self._sample_keys, keys])
            vals = np.concatenate([self._sample_vals, vals])
        if keys.size > self._SAMPLE_CAP:
            keep = np.argpartition(keys, self._SAMPLE_CAP)[: self._SAMPLE_CAP]
            keys, vals = keys[keep], vals[keep]
        self._sample_keys, self._sample_vals = keys, vals
        self._sample_count += flat.size

    def _range_anchor(self) -> float:
        if self.calibration == "max":
            return self.max_abs
        if self._sample_vals is None:
            return self.max_abs
        return float(np.percentile(self._sample_vals, self.percentile))

    def freeze(self) -> None:
        """Fit the adaptive parameter from observed statistics and apply."""
        if isinstance(self.quantizer, AdaptiveQuantizer):
            anchor = self._range_anchor()
            if anchor <= 0.0:
                raise RuntimeError(
                    "activation quantizer frozen without calibration data")
            self.params = self.quantizer.fit(np.asarray([anchor]))
        self.mode = "apply"

    def bypass(self) -> None:
        self.mode = "bypass"

    # ------------------------------------------------------------ forward
    def _quantize_array(self, data: np.ndarray) -> np.ndarray:
        if isinstance(self.quantizer, AdaptiveQuantizer):
            return self.quantizer.quantize_with_params(
                np.asarray(data, dtype=np.float64), self.params)
        return self.quantizer.quantize(data)

    def __call__(self, x: Tensor) -> Tensor:
        if self.mode == "bypass":
            return x
        if self.mode == "observe":
            self._record(x.data)
            return x
        return F.fake_quantize(x, self._quantize_array)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ActFakeQuant({self.quantizer!r}, mode={self.mode!r})"


# ---------------------------------------------------------------- attaching
def _target_modules(model: Module,
                    layer_types: Tuple[Type[Module], ...]
                    ) -> Iterator[Tuple[str, Module]]:
    for name, module in model.named_modules():
        if isinstance(module, layer_types):
            yield name, module


def attach_weight_quantizers(
        model: Module, spec: QuantSpec,
        layer_types: Tuple[Type[Module], ...] = DEFAULT_QUANTIZED_LAYERS
) -> List[str]:
    """Attach a fresh weight fake-quantizer to every matching layer.

    Returns the names of instrumented modules.
    """
    touched = []
    for name, module in _target_modules(model, layer_types):
        module.weight_fake_quant = WeightFakeQuant(spec.build())
        touched.append(name)
    if not touched:
        raise ValueError("no quantizable layers found in model")
    return touched


def attach_act_quantizers(
        model: Module, spec: QuantSpec,
        layer_types: Tuple[Type[Module], ...] = DEFAULT_QUANTIZED_LAYERS,
        calibration: str = "max", percentile: float = 99.9
) -> Dict[str, ActFakeQuant]:
    """Attach activation fake-quantizers; returns them keyed by module name."""
    observers: Dict[str, ActFakeQuant] = {}
    for name, module in _target_modules(model, layer_types):
        observer = ActFakeQuant(spec.build(), calibration=calibration,
                                percentile=percentile)
        module.act_fake_quant = observer
        observers[name] = observer
    if not observers:
        raise ValueError("no quantizable layers found in model")
    return observers


def weight_quant_cache_stats(model: Module) -> Dict[str, int]:
    """Aggregate hit/miss counters across all attached weight quantizers.

    Returns ``{"hits": ..., "misses": ...}``; a frozen PTQ evaluation
    should show exactly one miss per (quantizer, weight tensor) pair
    with everything else hitting.
    """
    hits = misses = 0
    for module in model.modules():
        wq = module.weight_fake_quant
        if isinstance(wq, WeightFakeQuant):
            hits += wq.hits
            misses += wq.misses
    return {"hits": hits, "misses": misses}


def reset_weight_quant_cache_stats(model: Module) -> None:
    """Zero the hit/miss counters (the memoized arrays are kept)."""
    for module in model.modules():
        wq = module.weight_fake_quant
        if isinstance(wq, WeightFakeQuant):
            wq.hits = 0
            wq.misses = 0


def detach_quantizers(model: Module) -> None:
    """Remove every weight/activation fake-quantizer from the model."""
    for module in model.modules():
        module.weight_fake_quant = None
        module.act_fake_quant = None


@contextlib.contextmanager
def calibrate(model: Module):
    """Context manager: observe activation ranges, then freeze them.

    Run representative batches inside the ``with`` block; on exit every
    attached :class:`ActFakeQuant` freezes its grid and starts applying.
    """
    observers = [m.act_fake_quant for m in model.modules()
                 if m.act_fake_quant is not None]
    if not observers:
        raise ValueError("model has no activation quantizers attached")
    for obs in observers:
        obs.observe()
    yield model
    for obs in observers:
        obs.freeze()


# --------------------------------------------------------------------- PTQ
def quantize_weights_inplace(
        model: Module, spec: QuantSpec,
        layer_types: Tuple[Type[Module], ...] = DEFAULT_QUANTIZED_LAYERS
) -> Dict[str, Dict[str, Any]]:
    """Post-training quantization: overwrite weights with their quantized
    values (per weight tensor, self-adaptive).  Returns the adaptive
    parameters per quantized parameter for reporting/bit-packing.
    """
    report: Dict[str, Dict[str, Any]] = {}
    for name, module in _target_modules(model, layer_types):
        for pname, param in module._parameters.items():
            if pname.startswith("bias") or pname == "bias":
                continue
            quantizer = spec.build()
            if isinstance(quantizer, AdaptiveQuantizer):
                params = quantizer.fit(param.data)
                quantized = quantizer.quantize_with_params(
                    param.data.astype(np.float64), params)
            else:
                params = {}
                quantized = quantizer.quantize(param.data)
            param.data = quantized.astype(np.float32)
            param.bump_version()
            report[f"{name}.{pname}"] = params
    if not report:
        raise ValueError("no weights quantized")
    return report
