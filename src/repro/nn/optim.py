"""Optimizers and gradient utilities."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer: holds the parameter list and zero_grad."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = p.data - self.lr * grad
            p.bump_version()


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bc1 = 1.0 - self.beta1 ** self._step
        bc2 = 1.0 - self.beta2 ** self._step
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / bc1
            v_hat = self._v[i] / bc2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            p.bump_version()
