#!/usr/bin/env python
"""Quickstart: the AdaptivFloat format on the paper's own example.

Reproduces Figure 2 (the zero-codepoint trick) and Figure 3 (the worked
AdaptivFloat<4,2> quantization of a 4x4 matrix), then compares the five
formats of the paper on a heavy-tailed weight tensor and round-trips an
AdaptivFloat tensor through its real bitstream.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.formats import (AdaptivFloat, pack_words, paper_formats,
                           unpack_words)

# --------------------------------------------------------------- Figure 3
W = np.array([
    [-1.17, 2.71, -1.60, 0.43],
    [-1.14, 2.05, 1.01, 0.07],
    [0.16, -0.03, -0.89, -0.87],
    [-0.04, -0.39, 0.64, -2.89],
])

fmt = AdaptivFloat(bits=4, exp_bits=2)
params = fmt.fit(W)
print("paper Figure 3: AdaptivFloat<4,2> quantization")
print(f"  max|W| = {np.abs(W).max():.2f}  ->  exp_bias = {params['exp_bias']}")
vmin, vmax = fmt.range_for_bias(params["exp_bias"])
print(f"  representable |values|: [{float(vmin)}, {float(vmax)}]")
print("  quantized matrix:")
print(fmt.quantize(W))

# --------------------------------------------------------------- Figure 2
print("\npaper Figure 2: the bottom codepoint encodes zero")
points = fmt.codepoints(exp_bias=-2)
print(f"  codepoints at exp_bias=-2: {points.tolist()}")
print("  note: +/-0.25 (= 2^-2) is sacrificed for +/-0")

# ----------------------------------------------------- format comparison
print("\nRMS quantization error on a heavy-tailed tensor (8-bit / 4-bit):")
rng = np.random.default_rng(0)
weights = rng.standard_t(df=3, size=20_000) * 0.05  # wide, NLP-like bulk/tail
for bits in (8, 4):
    row = {q.name: q.quantization_error(weights) for q in paper_formats(bits)}
    best = min(row, key=row.get)
    cells = "  ".join(f"{name}={err:.4f}" for name, err in row.items())
    print(f"  {bits}-bit: {cells}   <- best: {best}")

# ------------------------------------------------------------ bitstreams
print("\nbit-exact storage: quantize -> encode -> pack -> unpack -> decode")
fmt8 = AdaptivFloat(bits=8, exp_bits=3)
params = fmt8.fit(weights)
values = fmt8.quantize_with_params(weights.astype(np.float64), params)
words = fmt8.encode(values, params["exp_bias"])
stream = pack_words(words, bits=8)
back = fmt8.decode(unpack_words(stream, 8, len(words)), params["exp_bias"])
assert np.array_equal(back, values)
print(f"  {len(words)} weights -> {len(stream)} bytes "
      f"({8 * len(stream) / len(words):.1f} bits/weight), lossless")
