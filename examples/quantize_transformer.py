#!/usr/bin/env python
"""Quantizing a trained Transformer: PTQ vs QAR across formats.

Trains (or loads from the artifact cache) the synthetic-translation
Transformer, then walks one row of paper Table 2: BLEU under 8/6/4-bit
weight quantization for all five formats, post-training and after
quantization-aware retraining for the 4-bit AdaptivFloat case.

Run:  python examples/quantize_transformer.py [--profile fast|full]
"""

import argparse

from repro.experiments.common import (PROFILES, get_bundle, qar_retrain,
                                      trained_model)
from repro.formats import FORMAT_NAMES
from repro.nn import (QuantSpec, attach_weight_quantizers,
                      quantize_weights_inplace)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("fast", "full"), default="fast")
    args = parser.parse_args()
    prof = PROFILES[args.profile]

    bundle = get_bundle("transformer")
    base, task, fp32 = trained_model("transformer", args.profile)
    state = base.state_dict()
    print(f"FP32 baseline BLEU = {fp32:.2f} "
          f"(paper reference model: 27.40 on WMT'17)")

    print("\npost-training quantization (weights only):")
    for bits in (8, 6, 4):
        cells = []
        for fmt in FORMAT_NAMES:
            model, _ = bundle.build()
            model.load_state_dict(state)
            quantize_weights_inplace(model, QuantSpec(fmt, bits))
            model.eval()
            bleu = bundle.evaluate(model, task, prof.eval_size)
            cells.append(f"{fmt}={bleu:.2f}")
        print(f"  {bits}-bit: " + "  ".join(cells))

    print("\nquantization-aware retraining, AdaptivFloat<4,3>:")
    model, _ = bundle.build()
    model.load_state_dict(state)
    attach_weight_quantizers(model, QuantSpec("adaptivfloat", 4))
    before = bundle.evaluate(model, task, prof.eval_size)
    qar_retrain(model, task, bundle, prof)
    after = bundle.evaluate(model, task, prof.eval_size)
    print(f"  PTQ {before:.2f} -> QAR {after:.2f} "
          "(paper: 16.3 -> 25.5 at 4-bit)")


if __name__ == "__main__":
    main()
