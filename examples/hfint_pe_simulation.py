#!/usr/bin/env python
"""Hardware co-design walk-through: INT vs HFINT PE on an LSTM gate.

1. Quantizes one LSTM gate computation (weights + activations) with
   both encodings and runs it through the *bit-accurate* datapath
   simulations of paper Fig. 5 — showing the HFINT pipeline's integer
   accumulator reproduces the AdaptivFloat dot product exactly.
2. Prints the analytical per-op energy / throughput-per-area of both
   PEs across MAC vector sizes (paper Fig. 7).
3. Prints the 4-PE accelerator systems' power/area/latency (Table 4).

Run:  python examples/hfint_pe_simulation.py
"""

import numpy as np

from repro.formats import AdaptivFloat, Uniform
from repro.hardware import (HFIntVectorMac, IntVectorMac, PAPER_WORKLOAD,
                            RequantParams, make_pe, paper_accelerator)

rng = np.random.default_rng(0)
hidden, inputs = 32, 64
weights = rng.normal(size=(hidden, inputs)) * 0.4
acts = np.tanh(rng.normal(size=inputs))

# ----------------------------------------------------------- HFINT datapath
print("bit-accurate HFINT8/30 pipeline (paper Fig. 5b)")
fmt = AdaptivFloat(8, 3)
bias_w = int(fmt.fit(weights)["exp_bias"])
bias_a = int(fmt.fit(acts)["exp_bias"])
w_q = fmt.quantize_with_params(weights, {"exp_bias": bias_w})
a_q = fmt.quantize_with_params(acts, {"exp_bias": bias_a})
reference = np.tanh(w_q @ a_q)

mac = HFIntVectorMac(bits=8, exp_bits=3)
out_bias = int(fmt.fit(reference)["exp_bias"])
shift = mac.output_shift_for(np.abs(w_q @ a_q).max(), bias_w, bias_a)
words, values = mac.matvec(fmt.encode(w_q, bias_w), bias_w,
                           fmt.encode(a_q, bias_a), bias_a,
                           out_bias, shift, activation=np.tanh)
acc = mac.accumulate(fmt.encode(w_q, bias_w), fmt.encode(a_q, bias_a))
unit = 2.0 ** (bias_w + bias_a - 2 * mac.mant_bits)
print(f"  weight exp_bias={bias_w}, activation exp_bias={bias_a}, "
      f"accumulator width={mac.acc_width} bits")
print(f"  integer accumulator == exact dot product: "
      f"{np.allclose(acc * unit, w_q @ a_q)}")
print(f"  post-activation max |error| vs float reference: "
      f"{np.abs(values - reference).max():.5f}")

# ------------------------------------------------------------- INT datapath
print("\nbit-accurate INT8/24/40 pipeline (paper Fig. 5a)")
uq = Uniform(8)
wp, ap = uq.fit(weights), uq.fit(acts)
w_lvl = np.rint(uq.quantize_with_params(weights, wp) / wp["scale"]).astype(np.int64)
a_lvl = np.rint(uq.quantize_with_params(acts, ap) / ap["scale"]).astype(np.int64)
imac = IntVectorMac(bits=8)
ref_int = (w_lvl * wp["scale"]) @ (a_lvl * ap["scale"])
s_out = np.abs(ref_int).max() / 127
requant = RequantParams.from_scale(wp["scale"] * ap["scale"] / s_out, 16)
out_lvl = imac.matvec(w_lvl, a_lvl, requant)
print(f"  {imac.scale_bits}-bit requant scale = {requant.multiplier}/2^{requant.frac_bits}")
print(f"  max |error| vs float reference: "
      f"{np.abs(out_lvl * s_out - ref_int).max():.5f} "
      f"(<= 1 LSB = {s_out:.5f})")

# ------------------------------------------------------------ PPA (Fig. 7)
print("\nanalytical PE model (paper Fig. 7):")
for k in (4, 8, 16):
    int_pe = make_pe("int", 8, k)
    hf_pe = make_pe("hfint", 8, k)
    print(f"  K={k:2d}: {int_pe.name} {int_pe.energy_per_op():6.2f} fJ/op, "
          f"{int_pe.perf_per_area():.2f} TOPS/mm2 | "
          f"{hf_pe.name} {hf_pe.energy_per_op():6.2f} fJ/op, "
          f"{hf_pe.perf_per_area():.2f} TOPS/mm2 | "
          f"energy ratio {hf_pe.energy_per_op()/int_pe.energy_per_op():.3f}")

# --------------------------------------------------------- system (Table 4)
print("\naccelerator systems (paper Table 4):")
for kind in ("int", "hfint"):
    report = paper_accelerator(kind).report(PAPER_WORKLOAD)
    print(f"  {report['name']}: {report['power_mw']:.2f} mW, "
          f"{report['area_mm2']:.2f} mm2, {report['runtime_us']:.1f} us")
