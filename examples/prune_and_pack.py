#!/usr/bin/env python
"""Deep-Compression-style pipeline: prune -> AdaptivFloat -> bitstream.

Paper Section 2 notes that pruning/weight-sharing "can be used in
combination to this work".  This example prunes an MLP, quantizes the
surviving weights to AdaptivFloat<6,3> (where the zero codepoint keeps
the sparsity bit-exact), packs everything into real 6-bit bitstreams,
and reports the storage reduction versus FP32.

Run:  python examples/prune_and_pack.py
"""

import numpy as np

from repro.formats import AdaptivFloat, pack_words, packed_nbytes
from repro.nn import QuantSpec, quantize_weights_inplace
from repro.nn.models import MLP
from repro.nn.prune import magnitude_prune, sparsity_report

BITS = 6

model = MLP([64, 128, 64, 10], rng=np.random.default_rng(0))
fp32_bytes = sum(p.data.nbytes for p in model.parameters())
print(f"dense FP32 model: {fp32_bytes} bytes")

masks = magnitude_prune(model, sparsity=0.6, scope="global")
report = quantize_weights_inplace(model, QuantSpec("adaptivfloat", BITS))
overall = sparsity_report(model)["__overall__"]
print(f"after 60% magnitude pruning + AdaptivFloat<{BITS},3>: "
      f"{overall:.1%} of weights are exact zeros")

fmt = AdaptivFloat(BITS, 3)
packed_bytes = 0
for (name, module) in model.named_modules():
    for pname, param in module._parameters.items():
        if pname == "bias":
            packed_bytes += param.data.nbytes  # biases stay FP32
            continue
        key = f"{name}.{pname}"
        if key not in report:
            continue
        exp_bias = int(report[key]["exp_bias"])
        words = fmt.encode(param.data.astype(np.float64), exp_bias)
        stream = pack_words(words, BITS)
        assert len(stream) == packed_nbytes(param.data.size, BITS)
        packed_bytes += len(stream) + 1  # +1 byte for the exp_bias register

print(f"packed {BITS}-bit model: {packed_bytes} bytes "
      f"({fp32_bytes / packed_bytes:.2f}x smaller; a sparse container "
      "over the zero codepoints would shrink it further)")
