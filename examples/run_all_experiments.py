#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Writes rendered ASCII tables to ``artifacts/reports/`` and structured
JSON to ``artifacts/results/``.  The ``full`` profile reproduces the
numbers recorded in EXPERIMENTS.md (roughly an hour on one CPU, mostly
the Table 2/3 QAR grids); ``fast`` finishes in a few minutes.

Run:  python examples/run_all_experiments.py [--profile fast|full]
      python examples/run_all_experiments.py --only table2 fig7
"""

import argparse
import time

from repro.cache import cache_dir
from repro.experiments import (ablations, fig1_weight_ranges,
                               fig4_rms_error, fig7_pe_sweep, table1_models,
                               table2_weight_quant, table3_weight_act_quant,
                               table4_accelerator)

EXPERIMENTS = {
    "table1": (table1_models, True),
    "fig1": (fig1_weight_ranges, True),
    "fig4": (fig4_rms_error, True),
    "table2": (table2_weight_quant, True),
    "table3": (table3_weight_act_quant, True),
    "fig7": (fig7_pe_sweep, False),
    "table4": (table4_accelerator, False),
    "ablations": (ablations, True),
}

#: Sweeps that accept a worker count (the QAR grids dominate wall clock).
_PARALLEL = ("table2", "table3")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("fast", "full"), default="full")
    parser.add_argument("--only", nargs="*", choices=sorted(EXPERIMENTS),
                        help="subset of experiments to run")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the table2/table3 sweeps "
                             "(cells are cached, so reruns are incremental)")
    args = parser.parse_args()

    reports = cache_dir() / "reports"
    reports.mkdir(parents=True, exist_ok=True)
    selected = args.only or list(EXPERIMENTS)

    for name in selected:
        driver, takes_profile = EXPERIMENTS[name]
        start = time.time()
        if name in _PARALLEL:
            result = driver.run(profile=args.profile, jobs=args.jobs)
        elif takes_profile:
            result = driver.run(profile=args.profile)
        else:
            result = driver.run()
        text = driver.render(result)
        path = reports / f"{name}_{args.profile}.txt"
        path.write_text(text + "\n")
        print(f"=== {name} ({time.time() - start:.0f}s) -> {path}")
        print(text)
        print()


if __name__ == "__main__":
    main()
