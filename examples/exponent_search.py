#!/usr/bin/env python
"""The paper's exponent-width search (Section 4) as a runnable ablation.

"The number of exponent bits ... is set evenly for all the layers to the
value yielding the highest inference accuracy after doing a search on
the exponent width.  Generally the best performance was obtained with 3
bits for AdaptivFloat, 4 bits for float, and 1 bit for posit."

This example reruns that search on synthetic weight ensembles of three
different spreads (CNN-like, seq2seq-like, Transformer-like) using the
cheap RMS proxy, then confirms the chosen widths against the paper's.

Run:  python examples/exponent_search.py
"""

import numpy as np

from repro.analysis import exponent_width_search_rms

rng = np.random.default_rng(0)

ENSEMBLES = {
    "cnn-like (narrow)": [rng.normal(size=4096) * 0.05 for _ in range(8)],
    "seq2seq-like (medium)": [rng.standard_t(df=4, size=4096) * 0.2
                              for _ in range(8)],
    "transformer-like (wide)": [
        np.concatenate([rng.normal(size=4096) * 0.1,
                        rng.standard_t(df=2, size=64) * 4.0])
        for _ in range(8)],
}

print("exponent-width search, 8-bit words (RMS-error proxy):")
for label, tensors in ENSEMBLES.items():
    print(f"\n  {label}")
    for fmt, candidates in (("adaptivfloat", range(1, 6)),
                            ("float", range(2, 7)),
                            ("posit", range(0, 4))):
        best, scores = exponent_width_search_rms(tensors, fmt, 8, candidates)
        pretty = ", ".join(f"{w}:{s:.4f}" for w, s in sorted(scores.items()))
        print(f"    {fmt:13s} best width = {best}   ({pretty})")

print("\npaper's chosen widths: adaptivfloat=3, float=4, posit(es)=1")
