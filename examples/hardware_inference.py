#!/usr/bin/env python
"""Deploy a trained network onto the simulated HFINT PE — end to end.

Trains a small classifier, compiles it into a :class:`HardwareProgram`
(packed AdaptivFloat bitstreams + exp_bias registers + shift amounts),
executes it on the bit-accurate PE datapath, and compares hardware
predictions against the FP32 model.  Also compiles an LSTM cell — the
accelerator's Table 4 kernel — and tracks its hidden-state trajectory.

Run:  python examples/hardware_inference.py
"""

import numpy as np

import repro.nn as nn
from repro.hardware import compile_linear_stack, compile_lstm_cell
from repro.nn import functional as F
from repro.nn.models import MLP

rng = np.random.default_rng(0)

# ----------------------------------------------------- train a classifier
print("training a 3-layer classifier (FP32)...")
model = MLP([16, 32, 16, 4], rng=rng)
opt = nn.Adam(model.parameters(), lr=1e-2)
centers = rng.normal(size=(4, 16)) * 1.5
for _ in range(300):
    labels = rng.integers(0, 4, size=64)
    x = (centers[labels] + rng.normal(size=(64, 16))).astype(np.float32)
    loss = F.cross_entropy(model(x), labels)
    opt.zero_grad()
    loss.backward()
    opt.step()
model.eval()

# --------------------------------------------------------------- compile
calib_labels = rng.integers(0, 4, size=256)
calib = (centers[calib_labels] + rng.normal(size=(256, 16))).astype(np.float32)
weights = [layer.weight.data for layer in model.layers]
biases = [layer.bias.data for layer in model.layers]
program = compile_linear_stack(weights, biases,
                               ["relu", "relu", "identity"], calib, bits=8)
total_stream = sum(len(l.weight_stream) for l in program.layers)
print(f"compiled to a HardwareProgram: {len(program.layers)} layers, "
      f"{total_stream} bytes of packed 8-bit AdaptivFloat weights")
for i, layer in enumerate(program.layers):
    print(f"  layer {i}: w_bias={layer.weight_bias:+d} "
          f"act_bias={layer.act_bias_out:+d} shift={layer.shift}")

# ------------------------------------------------------------- execute
test_labels = rng.integers(0, 4, size=200)
test = (centers[test_labels] + rng.normal(size=(200, 16))).astype(np.float32)
hw_pred = program.run(test).argmax(axis=-1)
with nn.no_grad():
    fp_pred = model(test).data.argmax(axis=-1)
fp_acc = (fp_pred == test_labels).mean()
hw_acc = (hw_pred == test_labels).mean()
print(f"FP32 accuracy {fp_acc:.1%} | bit-accurate HFINT PE {hw_acc:.1%} | "
      f"prediction agreement {(hw_pred == fp_pred).mean():.1%}")

# ----------------------------------------------------- the Table 4 kernel
print("\ncompiling an LSTM cell (the accelerator's workload)...")
hidden, inputs = 32, 24
wih = rng.normal(size=(4 * hidden, inputs)) * 0.3
whh = rng.normal(size=(4 * hidden, hidden)) * 0.3
bias = np.zeros(4 * hidden)
bias[hidden:2 * hidden] = 1.0
frames = rng.normal(size=(20, inputs))
cell = compile_lstm_cell(wih, whh, bias, frames, bits=8)
hw_states = cell.run(frames)


def fp32_lstm(frames):
    h = np.zeros(hidden)
    c = np.zeros(hidden)
    out = []
    sig = lambda v: 1.0 / (1.0 + np.exp(-v))
    for x in frames:
        gates = wih @ x + whh @ h + bias
        i, f = sig(gates[:hidden]), sig(gates[hidden:2 * hidden])
        g = np.tanh(gates[2 * hidden:3 * hidden])
        o = sig(gates[3 * hidden:])
        c = f * c + i * g
        h = o * np.tanh(c)
        out.append(h)
    return np.stack(out)


fp_states = fp32_lstm(frames)
corr = np.corrcoef(hw_states.ravel(), fp_states.ravel())[0, 1]
print(f"20-step hidden-state trajectory: correlation with FP32 = {corr:.4f}, "
      f"mean |error| = {np.abs(hw_states - fp_states).mean():.4f}")
